let test_fifo_same_time () =
  let q = Sim.Event_queue.create () in
  let order = ref [] in
  let note tag () = order := tag :: !order in
  ignore (Sim.Event_queue.add q ~time:(Sim.Time.ms 1) (note "a"));
  ignore (Sim.Event_queue.add q ~time:(Sim.Time.ms 1) (note "b"));
  ignore (Sim.Event_queue.add q ~time:(Sim.Time.ms 1) (note "c"));
  let rec drain () =
    match Sim.Event_queue.pop q with
    | Some (_, f) ->
        f ();
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string)) "FIFO at equal times" [ "a"; "b"; "c" ]
    (List.rev !order)

let test_time_order () =
  let q = Sim.Event_queue.create ~initial_capacity:1 () in
  let times = [ 5; 1; 4; 2; 3; 9; 7; 8; 6; 0 ] in
  List.iter
    (fun ms -> ignore (Sim.Event_queue.add q ~time:(Sim.Time.ms ms) (fun () -> ())))
    times;
  let popped = ref [] in
  let rec drain () =
    match Sim.Event_queue.pop q with
    | Some (t, _) ->
        popped := Sim.Time.to_ms t :: !popped;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list (float 1e-9)))
    "ascending"
    [ 0.; 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9. ]
    (List.rev !popped)

let test_cancel () =
  let q = Sim.Event_queue.create () in
  let fired = ref 0 in
  let h1 = Sim.Event_queue.add q ~time:(Sim.Time.ms 1) (fun () -> incr fired) in
  let _h2 = Sim.Event_queue.add q ~time:(Sim.Time.ms 2) (fun () -> incr fired) in
  Sim.Event_queue.cancel q h1;
  Alcotest.(check bool) "is_cancelled" true (Sim.Event_queue.is_cancelled q h1);
  Alcotest.(check int) "live_count" 1 (Sim.Event_queue.live_count q);
  let rec drain () =
    match Sim.Event_queue.pop q with
    | Some (_, f) ->
        f ();
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "only live event fired" 1 !fired;
  (* Cancelling after the fact is a harmless no-op. *)
  Sim.Event_queue.cancel q h1

let test_empty () =
  let q = Sim.Event_queue.create () in
  Alcotest.(check bool) "is_empty" true (Sim.Event_queue.is_empty q);
  Alcotest.(check bool) "pop none" true (Sim.Event_queue.pop q = None);
  Alcotest.(check bool) "next_time none" true
    (Sim.Event_queue.next_time q = None)

let test_next_time_skips_cancelled () =
  let q = Sim.Event_queue.create () in
  let h = Sim.Event_queue.add q ~time:(Sim.Time.ms 1) (fun () -> ()) in
  ignore (Sim.Event_queue.add q ~time:(Sim.Time.ms 2) (fun () -> ()));
  Sim.Event_queue.cancel q h;
  (match Sim.Event_queue.next_time q with
  | Some t ->
      Alcotest.(check (float 1e-9)) "skips cancelled head" 2. (Sim.Time.to_ms t)
  | None -> Alcotest.fail "expected a live event")

let test_null_handle () =
  let q = Sim.Event_queue.create () in
  ignore (Sim.Event_queue.add q ~time:(Sim.Time.ms 1) (fun () -> ()));
  Sim.Event_queue.cancel q Sim.Event_queue.null;
  Alcotest.(check bool) "null is_cancelled" true
    (Sim.Event_queue.is_cancelled q Sim.Event_queue.null);
  Alcotest.(check int) "null cancel is a no-op" 1
    (Sim.Event_queue.live_count q)

let test_stale_handle_inert () =
  (* A handle whose event already fired must never cancel the event
     that recycles its slot. *)
  let q = Sim.Event_queue.create ~initial_capacity:1 () in
  let h1 = Sim.Event_queue.add q ~time:(Sim.Time.ms 1) (fun () -> ()) in
  (match Sim.Event_queue.pop q with
  | Some _ -> ()
  | None -> Alcotest.fail "expected event");
  let fired = ref false in
  let _h2 = Sim.Event_queue.add q ~time:(Sim.Time.ms 2) (fun () -> fired := true) in
  Sim.Event_queue.cancel q h1;
  Alcotest.(check int) "stale cancel leaves successor live" 1
    (Sim.Event_queue.live_count q);
  (match Sim.Event_queue.pop q with Some (_, f) -> f () | None -> ());
  Alcotest.(check bool) "successor fired" true !fired

let test_mass_cancel_drain () =
  (* A long run of cancelled roots is drained iteratively; with the old
     recursive pop this shape was the stack-overflow risk. Compaction
     kicks in once cancelled entries outnumber live ones, so the heap
     also physically shrinks. *)
  let n = 200_000 in
  let q = Sim.Event_queue.create () in
  let handles =
    Array.init n (fun i ->
        Sim.Event_queue.add q ~time:(Sim.Time.us i) (fun () -> ()))
  in
  let keeper = Sim.Event_queue.add q ~time:(Sim.Time.sec 1) (fun () -> ()) in
  Array.iter (fun h -> Sim.Event_queue.cancel q h) handles;
  Alcotest.(check int) "one live survivor" 1 (Sim.Event_queue.live_count q);
  Alcotest.(check bool) "keeper not cancelled" false
    (Sim.Event_queue.is_cancelled q keeper);
  (match Sim.Event_queue.pop q with
  | Some (t, _) ->
      Alcotest.(check (float 1e-9)) "survivor pops" 1000. (Sim.Time.to_ms t)
  | None -> Alcotest.fail "expected the survivor");
  Alcotest.(check bool) "empty after survivor" true (Sim.Event_queue.is_empty q)

let qcheck_heap_order =
  QCheck.Test.make ~name:"pop yields non-decreasing times" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 200) (int_bound 10_000))
    (fun times ->
      let q = Sim.Event_queue.create () in
      List.iter
        (fun ms ->
          ignore (Sim.Event_queue.add q ~time:(Sim.Time.us ms) (fun () -> ())))
        times;
      let rec drain prev =
        match Sim.Event_queue.pop q with
        | None -> true
        | Some (t, _) -> if Sim.Time.(t >= prev) then drain t else false
      in
      drain Sim.Time.zero)

let qcheck_cancel_count =
  QCheck.Test.make ~name:"live_count tracks cancellations" ~count:100
    QCheck.(pair (int_bound 50) (int_bound 50))
    (fun (keep, cancel) ->
      let q = Sim.Event_queue.create () in
      let handles =
        List.init (keep + cancel) (fun i ->
            Sim.Event_queue.add q ~time:(Sim.Time.us i) (fun () -> ()))
      in
      List.iteri
        (fun i h -> if i < cancel then Sim.Event_queue.cancel q h)
        handles;
      Sim.Event_queue.live_count q = keep)

(* Regression for the handle-space ceiling: overflowing 2^21 pending
   events must fail with a message that reports the live count and
   points at the cure (sharding / the timer wheel), not a bare limit. *)
let test_overflow_message () =
  let q = Sim.Event_queue.create () in
  let nop () = () in
  let n = 1 lsl 21 in
  for i = 0 to n - 1 do
    ignore (Sim.Event_queue.add q ~time:(Sim.Time.ns i) nop)
  done;
  match Sim.Event_queue.add q ~time:(Sim.Time.ns n) nop with
  | _ -> Alcotest.fail "expected Failure past 2^21 pending events"
  | exception Failure msg ->
      let expected =
        Printf.sprintf
          "Event_queue: handle space exhausted with %d live events (max \
           2^21 = %d pending). A single heap this loaded usually means an \
           unsharded packet-level workload — split the scenario across \
           partitions (\"domains\" > 1) or move dense per-flow timers to \
           Timer_wheel."
          n n
      in
      Alcotest.(check string) "overload message" expected msg

let suite =
  [
    Alcotest.test_case "FIFO at equal times" `Quick test_fifo_same_time;
    Alcotest.test_case "time ordering" `Quick test_time_order;
    Alcotest.test_case "cancellation" `Quick test_cancel;
    Alcotest.test_case "empty queue" `Quick test_empty;
    Alcotest.test_case "next_time skips cancelled" `Quick
      test_next_time_skips_cancelled;
    Alcotest.test_case "null handle" `Quick test_null_handle;
    Alcotest.test_case "stale handle is inert" `Quick test_stale_handle_inert;
    Alcotest.test_case "mass cancellation drains" `Quick test_mass_cancel_drain;
    Alcotest.test_case "2^21-pending overflow message" `Slow
      test_overflow_message;
    QCheck_alcotest.to_alcotest qcheck_heap_order;
    QCheck_alcotest.to_alcotest qcheck_cancel_count;
  ]
