type t = { sender : Sender.t; receiver : Receiver.t; flow : int }

let establish ~src ~dst ~flow ~ids ?config ?slow_start ?cong_avoid ?bytes
    ?name () =
  let receiver = Receiver.create ~host:dst ~flow ~ids ?config () in
  let sender =
    Sender.create ~host:src ~dst:(Netsim.Host.id dst) ~flow ~ids ?config
      ?slow_start ?cong_avoid ?name ()
  in
  Sender.start sender ?bytes ();
  { sender; receiver; flow }

let goodput_mbps t ~at = Receiver.goodput_mbps t.receiver ~at
let completed t ~bytes = Receiver.bytes_received t.receiver >= bytes
