(** Outcome artifacts, shared by [rss_sim run --spec --out] and the job
    service so both emit byte-identical files for the same spec. *)

val ensure_dir : string -> unit
(** [mkdir -p]. *)

val sanitize : string -> string
(** Replace everything but [[A-Za-z0-9._-]] with ['-'] — file-name-safe
    labels. *)

val write_outcome :
  dir:string -> Core.Spec.t -> Core.Spec.outcome -> string list
(** Write [<name>_outcome.json] plus, when the spec records series, the
    per-flow [<name>_<flow>_<tag>.csv] files
    (tags cwnd, stalls, ifq, throughput, srtt). Creates [dir] as
    needed; returns the paths written, JSON first. *)
