(* Core.Spec: JSON round-trips, fixed-seed goldens, worker-count
   determinism, Run.bulk equivalence and build-time validation. *)

module Spec = Core.Spec
module Fm = Netsim.Fault_model

let sec = Sim.Time.sec
let ms = Sim.Time.ms

(* --- round-trip -------------------------------------------------------- *)

let round_trip spec =
  let text = Report.Json.to_string (Spec.to_json spec) in
  match Report.Json.of_string text with
  | Error e -> Alcotest.failf "re-parse failed: %s" e
  | Ok json -> (
      match Spec.of_json json with
      | Error e -> Alcotest.failf "of_json failed: %s" e
      | Ok spec' -> spec')

let check_round_trip name spec =
  Alcotest.(check bool) name true (round_trip spec = spec)

let test_round_trip_default () = check_round_trip "default" Spec.default

let test_round_trip_62bit_seed () =
  (* derive_seed yields full-width native ints (possibly negative); the
     decimal-string encoding must carry them exactly. *)
  let seed = Sim.Rng.derive_seed ~root:0x1234_5678 ~stream:42 in
  Alcotest.(check bool) "seed exceeds double precision" true
    (abs seed > 1 lsl 53);
  check_round_trip "62-bit seed" { Spec.default with Spec.seed }

let full_fault_profile =
  {
    Fm.ge =
      Some { Fm.p_gb = 0.002; p_bg = 0.25; loss_good = 0.001; loss_bad = 0.5 };
    reorder = Some { Fm.prob = 0.01; max_extra = ms 12 };
    duplicate = Some { Fm.prob = 0.005; max_extra = ms 3 };
    schedule =
      [
        Fm.Outage { start = sec 2; stop = Sim.Time.add (sec 2) (ms 400) };
        Fm.Delay_step { at = sec 4; extra = ms 25 };
      ];
  }

let test_round_trip_trace_fields () =
  check_round_trip "trace instrumentation options"
    { Spec.default with Spec.record_trace = true; trace_capacity = 1024 };
  (* Specs written before the trace fields existed must still parse,
     with tracing off. *)
  let json =
    Report.Json.Obj [ ("name", Report.Json.String "legacy") ]
  in
  match Spec.of_json json with
  | Error e -> Alcotest.failf "legacy spec rejected: %s" e
  | Ok spec ->
      Alcotest.(check bool) "record_trace defaults off" false
        spec.Spec.record_trace;
      Alcotest.(check int) "trace_capacity defaults" 65536
        spec.Spec.trace_capacity

(* A traced run must observe without perturbing: identical flow
   results to the untraced run, trace/metrics present, ring and
   registry samples deterministic across repeats. *)
let test_traced_run_observes_only () =
  let spec =
    {
      Spec.default with
      Spec.name = "traced";
      duration = sec 2;
      record_trace = true;
      trace_capacity = 4096;
    }
  in
  let traced = Spec.run spec in
  let plain = Spec.run { spec with Spec.record_trace = false } in
  Alcotest.(check bool) "plain run has no trace" true (plain.Spec.trace = None);
  Alcotest.(check bool) "plain run has no metrics" true
    (plain.Spec.metrics = None);
  let scalars o =
    List.map
      (fun (r : Spec.flow_result) ->
        ( r.Spec.label,
          r.Spec.goodput_mbps,
          r.Spec.send_stalls,
          r.Spec.retransmits,
          r.Spec.timeouts,
          r.Spec.final_cwnd_segments ))
      o.Spec.results
  in
  Alcotest.(check bool) "tracing does not perturb results" true
    (scalars traced = scalars plain);
  let tr =
    match traced.Spec.trace with
    | Some tr -> tr
    | None -> Alcotest.fail "traced run lost its ring"
  in
  Alcotest.(check bool) "ring saw events" true (Trace.total tr > 0);
  let m =
    match traced.Spec.metrics with
    | Some m -> m
    | None -> Alcotest.fail "traced run lost its metrics"
  in
  (* conn/* for the flow, link/{forward,reverse}/*, host/{0,1}/*. *)
  Alcotest.(check bool) "registry carries conn metrics" true
    (List.exists
       (fun n -> String.length n > 5 && String.sub n 0 5 = "conn/")
       m.Spec.metric_names);
  Alcotest.(check bool) "registry carries link metrics" true
    (List.mem "link/forward/delivered" m.Spec.metric_names);
  Alcotest.(check bool) "registry carries host metrics" true
    (List.mem "host/0/ifq_occupancy" m.Spec.metric_names);
  Alcotest.(check int) "one sample per period (2s / 250ms)" 8
    (List.length m.Spec.samples);
  List.iter
    (fun (_, values) ->
      Alcotest.(check int) "sample width = names width"
        (List.length m.Spec.metric_names)
        (Array.length values))
    m.Spec.samples;
  (* Determinism: a repeat run yields the identical ring and samples. *)
  let traced' = Spec.run spec in
  let dump o =
    match (o.Spec.trace, o.Spec.metrics) with
    | Some tr, Some m ->
        (Report.Trace_event.to_csv tr, m.Spec.metric_names, m.Spec.samples)
    | _ -> Alcotest.fail "repeat run lost instrumentation"
  in
  Alcotest.(check bool) "byte-identical across repeats" true
    (dump traced = dump traced')

let test_round_trip_faults () =
  check_round_trip "fault profiles"
    {
      Spec.default with
      Spec.faults =
        { Spec.forward = full_fault_profile; reverse = full_fault_profile };
    }

let test_round_trip_workloads () =
  let flow workload = { Spec.default_flow with Spec.workload } in
  check_round_trip "every workload kind"
    {
      Spec.default with
      Spec.flows =
        [
          flow (Spec.Bulk { bytes = Some 1_000_000 });
          flow
            (Spec.Chunked
               { chunk_bytes = 65536; interval = ms 50; chunks = Some 20 });
          flow
            (Spec.Cbr
               {
                 rate = Sim.Units.mbps 10.;
                 packet_bytes = 1000;
                 stop_at = Some (sec 20);
               });
          flow
            (Spec.On_off
               {
                 peak_rate = Sim.Units.mbps 40.;
                 mean_on = ms 500;
                 mean_off = ms 1500;
                 packet_bytes = 1000;
               });
          flow
            (Spec.Short_flows
               {
                 arrival_rate = 10.;
                 mean_size = 30_720;
                 pareto_shape = 1.2;
                 stop_at = None;
               });
        ];
    }

let test_round_trip_dumbbell_red () =
  check_round_trip "dumbbell with RED and flow overrides"
    {
      Spec.default with
      Spec.topology =
        Spec.Dumbbell
          {
            Spec.pairs = 3;
            access_rate = Sim.Units.mbps 1000.;
            access_delay = ms 1;
            bottleneck_rate = Sim.Units.mbps 100.;
            bottleneck_delay = ms 28;
            buffer_packets = 250;
            host_ifq_capacity = 100;
            red =
              Some
                {
                  Netsim.Queue_disc.min_th = 50.;
                  max_th = 150.;
                  max_p = 0.1;
                  weight = 0.002;
                };
          };
      flows =
        [
          {
            Spec.default_flow with
            Spec.label = Some "tuned";
            pair = 2;
            start_at = ms 250;
            slow_start = "restricted-adaptive";
            restricted =
              Some
                {
                  Tcp.Slow_start.gains = Control.Pid.pid ~kp:0.5 ~ti:0.1 ~td:0.05;
                  setpoint_fraction = 0.8;
                  max_step_segments = 4.;
                  sample_min_interval = ms 2;
                };
            shared_rss = true;
            cong_avoid = Spec.Cubic;
            local_congestion = Tcp.Local_congestion.Cwr;
            delayed_ack = None;
            use_sack = false;
            pacing = true;
            slow_start_restart = false;
            max_rto = Some (sec 2);
          };
        ];
    }

let test_template_parses_and_builds () =
  match Report.Json.of_string (Spec.template ()) with
  | Error e -> Alcotest.failf "template is not valid JSON: %s" e
  | Ok json -> (
      match Spec.of_json json with
      | Error e -> Alcotest.failf "template rejected: %s" e
      | Ok spec ->
          ignore (Spec.build spec);
          Alcotest.(check bool) "template has several flows" true
            (List.length spec.Spec.flows >= 2))

let test_of_json_errors () =
  let reject text fragment =
    let json =
      match Report.Json.of_string text with
      | Ok j -> j
      | Error e -> Alcotest.failf "test input is not JSON: %s" e
    in
    match Spec.of_json json with
    | Ok _ -> Alcotest.failf "accepted %s" text
    | Error e ->
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
          at 0
        in
        let found = contains e fragment in
        Alcotest.(check bool)
          (Printf.sprintf "%S mentions %S" e fragment)
          true found
  in
  reject {|{"seed": 12}|} "seed";
  reject {|{"topology": {"kind": "mesh"}}|} "topology";
  reject {|{"flows": [{"workload": {"kind": "torrent"}}]}|} "workload"

(* --- fixed-seed goldens (from scratch run, full precision) ------------- *)

let golden_duplex_spec =
  {
    Spec.default with
    Spec.name = "golden-duplex";
    seed = 7;
    duration = sec 5;
    record_series = false;
    flows =
      [
        { Spec.default_flow with Spec.label = Some "rss";
          slow_start = "restricted" };
      ];
  }

let golden_dumbbell_spec =
  {
    Spec.default with
    Spec.name = "golden-dumbbell";
    seed = 9;
    duration = sec 5;
    record_series = false;
    topology =
      Spec.Dumbbell
        {
          Spec.pairs = 2;
          access_rate = Sim.Units.mbps 1000.;
          access_delay = ms 1;
          bottleneck_rate = Sim.Units.mbps 100.;
          bottleneck_delay = ms 28;
          buffer_packets = 250;
          host_ifq_capacity = 100;
          red = None;
        };
    flows =
      [
        { Spec.default_flow with Spec.label = Some "rss";
          slow_start = "restricted" };
        { Spec.default_flow with Spec.label = Some "std"; pair = 1;
          start_at = ms 500 };
      ];
    faults =
      {
        Spec.forward =
          {
            Fm.passthrough with
            Fm.ge =
              Some { Fm.p_gb = 0.002; p_bg = 0.2; loss_good = 0.; loss_bad = 0.3 };
          };
        reverse = Fm.passthrough;
      };
  }

let check_flow ~label ~goodput ~stalls ~cong ~retx ~timeouts ~cwnd
    (r : Spec.flow_result) =
  Alcotest.(check string) (label ^ " label") label r.Spec.label;
  Alcotest.(check (float 1e-6)) (label ^ " goodput") goodput r.Spec.goodput_mbps;
  Alcotest.(check int) (label ^ " stalls") stalls r.Spec.send_stalls;
  Alcotest.(check int) (label ^ " cong signals") cong r.Spec.congestion_signals;
  Alcotest.(check int) (label ^ " retx") retx r.Spec.retransmits;
  Alcotest.(check int) (label ^ " timeouts") timeouts r.Spec.timeouts;
  Alcotest.(check (float 1e-6)) (label ^ " cwnd") cwnd
    r.Spec.final_cwnd_segments

let test_golden_duplex () =
  let o = Spec.run golden_duplex_spec in
  (match o.Spec.results with
  | [ r ] ->
      check_flow ~label:"rss" ~goodput:83.682528 ~stalls:0 ~cong:0 ~retx:0
        ~timeouts:0 ~cwnd:597.00891889230695 r;
      Alcotest.(check (float 1e-6)) "mean ifq" 68.016001919994352
        r.Spec.mean_ifq;
      Alcotest.(check (float 1e-6)) "peak ifq" 96. r.Spec.peak_ifq
  | rs -> Alcotest.failf "expected 1 result, got %d" (List.length rs));
  Alcotest.(check (float 1e-9)) "jain" 1. o.Spec.path.Spec.jain_index;
  Alcotest.(check int) "no router drops on a duplex" 0
    o.Spec.path.Spec.router_drops

let test_golden_dumbbell () =
  let o = Spec.run golden_dumbbell_spec in
  (match o.Spec.results with
  | [ rss; std ] ->
      check_flow ~label:"rss" ~goodput:8.017152 ~stalls:0 ~cong:5 ~retx:6
        ~timeouts:0 ~cwnd:13.54290865013656 rss;
      check_flow ~label:"std" ~goodput:10.832032 ~stalls:0 ~cong:3 ~retx:5
        ~timeouts:0 ~cwnd:41.908648991806743 std
  | rs -> Alcotest.failf "expected 2 results, got %d" (List.length rs));
  Alcotest.(check (float 1e-6)) "aggregate" 18.849184
    o.Spec.path.Spec.aggregate_goodput_mbps;
  Alcotest.(check (float 1e-9)) "jain" 0.97818497816417027
    o.Spec.path.Spec.jain_index

(* --- determinism across worker counts ---------------------------------- *)

let scalars (o : Spec.outcome) =
  ( List.map
      (fun (r : Spec.flow_result) ->
        ( r.Spec.label,
          r.Spec.goodput_mbps,
          r.Spec.send_stalls,
          r.Spec.retransmits,
          r.Spec.timeouts,
          r.Spec.final_cwnd_segments ))
      o.Spec.results,
    o.Spec.path )

let test_jobs_determinism () =
  let specs =
    [
      golden_duplex_spec;
      golden_dumbbell_spec;
      { golden_dumbbell_spec with Spec.name = "golden-dumbbell-17"; seed = 17 };
    ]
  in
  let sequential = List.map scalars (Spec.run_batch specs) in
  let pooled =
    Engine.Pool.with_pool ~jobs:4 (fun pool ->
        List.map scalars (Spec.run_batch ~pool specs))
  in
  Alcotest.(check bool) "pool of 4 matches sequential" true
    (sequential = pooled)

(* --- Run.bulk is the one-flow special case ----------------------------- *)

let test_bulk_equals_one_flow_spec () =
  let run_spec =
    {
      Core.Run.default_spec with
      Core.Run.duration = sec 3;
      slow_start = "restricted";
      seed = 11;
    }
  in
  let r = Core.Run.bulk run_spec in
  let hand_built =
    {
      Spec.default with
      Spec.name = "restricted";
      seed = 11;
      duration = sec 3;
      flows =
        [
          { Spec.default_flow with Spec.label = Some "restricted";
            slow_start = "restricted" };
        ];
    }
  in
  match (Spec.run hand_built).Spec.results with
  | [ r' ] ->
      Alcotest.(check (float 0.)) "same goodput" r.Core.Run.goodput_mbps
        r'.Spec.goodput_mbps;
      Alcotest.(check int) "same stalls" r.Core.Run.send_stalls
        r'.Spec.send_stalls;
      Alcotest.(check (float 0.)) "same cwnd" r.Core.Run.final_cwnd_segments
        r'.Spec.final_cwnd_segments;
      Alcotest.(check int) "same series length"
        (Sim.Stats.Series.length r.Core.Run.cwnd_series)
        (Sim.Stats.Series.length r'.Spec.cwnd_series)
  | rs -> Alcotest.failf "expected 1 result, got %d" (List.length rs)

(* --- validation -------------------------------------------------------- *)

let test_validation () =
  let rejects name spec =
    match Spec.build spec with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  rejects "non-positive duration"
    { Spec.default with Spec.duration = Sim.Time.zero };
  rejects "zero ifq"
    {
      Spec.default with
      Spec.topology =
        Spec.Duplex { Spec.default_duplex with Spec.ifq_capacity = 0 };
    };
  rejects "loss rate above 1"
    {
      Spec.default with
      Spec.topology =
        Spec.Duplex { Spec.default_duplex with Spec.loss_rate = 1.5 };
    };
  rejects "negative start time"
    {
      Spec.default with
      Spec.flows =
        [ { Spec.default_flow with Spec.start_at = Sim.Time.of_sec (-1.) } ];
    };
  rejects "unknown policy"
    {
      Spec.default with
      Spec.flows = [ { Spec.default_flow with Spec.slow_start = "bogus" } ];
    };
  rejects "pair out of range"
    { Spec.default with Spec.flows = [ { Spec.default_flow with Spec.pair = 1 } ] };
  rejects "no flows" { Spec.default with Spec.flows = [] };
  rejects "bad chunk workload"
    {
      Spec.default with
      Spec.flows =
        [
          {
            Spec.default_flow with
            Spec.workload =
              Spec.Chunked
                { chunk_bytes = 0; interval = ms 50; chunks = None };
          };
        ];
    }

(* Bulk and Chunked flows share one TCP-result collector whose driver
   dispatch reports a descriptive error (not an assert) on mismatch;
   pin the legitimate arms: both kinds collect side by side. *)
let test_mixed_tcp_collect () =
  let o =
    Spec.run
      {
        Spec.default with
        Spec.name = "mixed-collect";
        seed = 13;
        duration = sec 2;
        flows =
          [
            {
              Spec.default_flow with
              Spec.label = Some "bulk";
              workload = Spec.Bulk { bytes = Some 400_000 };
            };
            {
              Spec.default_flow with
              Spec.label = Some "chunked";
              workload =
                Spec.Chunked
                  { chunk_bytes = 32_768; interval = ms 40; chunks = Some 10 };
            };
          ];
      }
  in
  let labels = List.map (fun (r : Spec.flow_result) -> r.Spec.label) o.results in
  Alcotest.(check (list string)) "both flows collected" [ "bulk"; "chunked" ]
    labels;
  List.iter
    (fun (r : Spec.flow_result) ->
      Alcotest.(check bool)
        (r.Spec.label ^ " moved data") true
        (r.Spec.goodput_mbps > 0.))
    o.results

let suite =
  [
    Alcotest.test_case "round-trip: default" `Quick test_round_trip_default;
    Alcotest.test_case "round-trip: 62-bit seed" `Quick
      test_round_trip_62bit_seed;
    Alcotest.test_case "round-trip: fault profiles" `Quick
      test_round_trip_faults;
    Alcotest.test_case "round-trip: trace fields" `Quick
      test_round_trip_trace_fields;
    Alcotest.test_case "traced run observes only" `Slow
      test_traced_run_observes_only;
    Alcotest.test_case "round-trip: workload kinds" `Quick
      test_round_trip_workloads;
    Alcotest.test_case "round-trip: dumbbell, RED, overrides" `Quick
      test_round_trip_dumbbell_red;
    Alcotest.test_case "template parses and builds" `Quick
      test_template_parses_and_builds;
    Alcotest.test_case "of_json errors name the field" `Quick
      test_of_json_errors;
    Alcotest.test_case "golden: duplex restricted" `Slow test_golden_duplex;
    Alcotest.test_case "golden: faulted dumbbell pair" `Slow
      test_golden_dumbbell;
    Alcotest.test_case "identical at any worker count" `Slow
      test_jobs_determinism;
    Alcotest.test_case "Run.bulk is the one-flow spec" `Slow
      test_bulk_equals_one_flow_spec;
    Alcotest.test_case "build validates the spec" `Quick test_validation;
    Alcotest.test_case "bulk + chunked collect side by side" `Slow
      test_mixed_tcp_collect;
  ]
