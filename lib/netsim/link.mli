(** Unidirectional propagation pipe.

    A link models only propagation delay (and optional random corruption
    loss); serialization happens upstream in the {!Nic}. Packets in
    flight are independent events, so the link itself never reorders —
    reordering, duplication and scheduled impairments are injected
    through the fault hook ({!set_fault_hook}, see
    {!Fault_model.install}). *)

type t

val create :
  Sim.Scheduler.t ->
  delay:Sim.Time.t ->
  ?loss_rate:float ->
  ?rng:Sim.Rng.t ->
  unit ->
  t
(** [loss_rate] is a per-packet independent corruption probability in
    the closed interval [\[0, 1\]] (default 0; 1 is a full blackout).
    Values outside the interval raise [Invalid_argument]. When no [rng]
    is supplied the link derives its own stream from the scheduler-wide
    seed via {!Sim.Scheduler.derive_rng}, so two lossy links created on
    the same scheduler make independent loss decisions while staying
    deterministic in the seed. *)

val connect : t -> (Packet.t -> unit) -> unit
(** Set the receiving endpoint. Must be called before any transmit. *)

val set_remote : t -> (due:Sim.Time.t -> Packet.t -> unit) -> unit
(** Turn the link into a partition-boundary endpoint. Transmit-side
    decisions (taps, drop filter, corruption loss, fault hook) still run
    on the owning partition's scheduler, but each surviving copy is
    handed to [push ~due pkt] — [due] being the absolute delivery time
    [now + delay + extra] — instead of being scheduled locally. The
    destination partition completes the delivery by calling
    {!remote_deliver} at [due]. The link's propagation delay is the
    channel's lookahead, so [due] is always at least one lookahead past
    the transmit time. *)

val remote_deliver : t -> Packet.t -> unit
(** Destination half of a remote link: count the arrival and hand the
    packet to the {!connect}ed sink. Call exactly once per pushed copy,
    at its due time, from the destination partition. *)

val transmit : t -> Packet.t -> unit
(** Begin propagation of [pkt]; it is delivered [delay] later unless
    corrupted, dropped or rescheduled by the fault hook. *)

val add_tap : t -> (Sim.Time.t -> Packet.t -> unit) -> unit
(** Observe every packet entering the link (before any loss decision),
    with the transmit timestamp. Taps run in registration order and
    must not mutate the packet. *)

val set_drop_filter : t -> (Packet.t -> bool) -> unit
(** Deterministic loss injection: packets for which the filter returns
    [true] are dropped (counted in {!lost}). Applied before the random
    [loss_rate]. Intended for tests that need to kill one specific
    segment. *)

val set_fault_hook : t -> (Sim.Time.t -> Packet.t -> Sim.Time.t list) -> unit
(** Install the fault-injection hook, consulted for every packet that
    survives the drop filter and the random [loss_rate]. The hook maps
    [(now, pkt)] to the list of extra propagation delays, one delivery
    per element: [[]] drops the packet (counted in {!lost});
    [[Time.zero]] is a normal delivery; a positive element delays that
    copy beyond [delay] (modelling reordering or a path-delay change);
    two or more elements duplicate the packet (extra copies counted in
    {!duplicated}). Negative delays are clamped to zero. *)

val set_tracer : t -> ?src:int -> Trace.t option -> unit
(** Install (or remove) an event tracer: every transmit emits
    [link.tx], every loss (corruption, drop filter or fault hook)
    [link.drop], and every arrival [link.deliver], all carrying the
    packet's flow id and wire size with [src] (default 0) identifying
    this link. With [None] tracing costs one pattern match and
    allocates nothing. *)

val delay : t -> Sim.Time.t
val delivered : t -> int
val lost : t -> int
(** Packets corrupted in flight or dropped by the fault hook so far. *)

val duplicated : t -> int
(** Extra copies created by the fault hook (a packet delivered twice
    counts one transmit, two {!delivered}, one {!duplicated}). *)

val in_flight : t -> int
(** Copies transmitted but not yet delivered. On a remote link this is
    the difference of two single-writer counters owned by different
    partitions — read it only at synchronization barriers. *)
