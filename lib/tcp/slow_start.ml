type view = {
  now : unit -> Sim.Time.t;
  mss : int;
  cwnd : unit -> float;
  ssthresh : unit -> float;
  flight : unit -> int;
  snd_una : unit -> int;
  snd_nxt : unit -> int;
  srtt : unit -> Sim.Time.t option;
  min_rtt : unit -> Sim.Time.t option;
  ifq_occupancy : unit -> int;
  ifq_capacity : unit -> int;
}

type decision = { cwnd_delta : float; exit_slow_start : bool }

type t = {
  name : string;
  on_ack : view -> newly_acked:int -> rtt_sample:Sim.Time.t option -> decision;
  reset : unit -> unit;
}

let no_exit delta = { cwnd_delta = delta; exit_slow_start = false }

let standard () =
  let on_ack view ~newly_acked:_ ~rtt_sample:_ =
    no_exit (float_of_int view.mss)
  in
  { name = "standard"; on_ack; reset = (fun () -> ()) }

let abc ?(l_limit = 2) () =
  let on_ack view ~newly_acked ~rtt_sample:_ =
    no_exit (float_of_int (Stdlib.min newly_acked (l_limit * view.mss)))
  in
  { name = "abc"; on_ack; reset = (fun () -> ()) }

let limited ?(max_ssthresh_segments = 100) () =
  let on_ack view ~newly_acked:_ ~rtt_sample:_ =
    let mss = float_of_int view.mss in
    let max_ssthresh = float_of_int max_ssthresh_segments *. mss in
    let cwnd = view.cwnd () in
    if cwnd <= max_ssthresh then no_exit mss
    else begin
      (* RFC 3742: K = int(cwnd / (0.5 max_ssthresh)), increment MSS/K,
         capping growth at max_ssthresh/2 segments per RTT. *)
      let k = Float.ceil (cwnd /. (0.5 *. max_ssthresh)) in
      no_exit (mss /. k)
    end
  in
  { name = "limited"; on_ack; reset = (fun () -> ()) }

let hystart ?(ack_train_threshold = Sim.Time.ms 2) ?(min_samples = 8) () =
  let round_end = ref 0 in
  let round_start_time = ref Sim.Time.zero in
  let last_ack_time = ref Sim.Time.zero in
  let round_min_rtt = ref None in
  let samples_in_round = ref 0 in
  let in_round = ref false in
  let reset () =
    round_end := 0;
    round_min_rtt := None;
    samples_in_round := 0;
    in_round := false
  in
  let eta base =
    (* Delay threshold: clamp(min_rtt/8, 4ms, 16ms). *)
    Sim.Time.min (Sim.Time.ms 16)
      (Sim.Time.max (Sim.Time.ms 4) (Sim.Time.scale base 0.125))
  in
  let on_ack view ~newly_acked:_ ~rtt_sample =
    let now = view.now () in
    (* Round bookkeeping: a round ends when the ACK point reaches where
       snd_nxt stood at the round's start. *)
    if (not !in_round) || view.snd_una () >= !round_end then begin
      in_round := true;
      round_end := view.snd_nxt ();
      round_start_time := now;
      round_min_rtt := None;
      samples_in_round := 0;
      last_ack_time := now
    end;
    let exit_train =
      (* Closely-spaced ACKs: the train's span measures delivered pipe.
         Once it covers half the base RTT, the window fills the path. *)
      let gap = Sim.Time.sub now !last_ack_time in
      last_ack_time := now;
      match view.min_rtt () with
      | Some base when Sim.Time.(gap <= ack_train_threshold) ->
          let span = Sim.Time.sub now !round_start_time in
          Sim.Time.(span >= Sim.Time.scale base 0.5)
      | Some _ | None -> false
    in
    let exit_delay =
      match rtt_sample with
      | None -> false
      | Some r ->
          incr samples_in_round;
          (round_min_rtt :=
             match !round_min_rtt with
             | None -> Some r
             | Some m -> Some (Sim.Time.min m r));
          if !samples_in_round < min_samples then false
          else
            (match (view.min_rtt (), !round_min_rtt) with
            | Some base, Some current ->
                Sim.Time.(current >= Sim.Time.add base (eta base))
            | _ -> false)
    in
    {
      cwnd_delta = float_of_int view.mss;
      exit_slow_start = exit_train || exit_delay;
    }
  in
  { name = "hystart"; on_ack; reset }

(* SSthreshless Start (arXiv 1401.7146 idea): exit slow-start on the
   *measured* path instead of an arbitrary initial ssthresh. Growth is
   exponential; each RTT round tracks its minimum RTT sample, and once
   enough samples show queuing delay above [queue_fraction]·base the
   pipe is full — the window is trimmed onto the BDP estimate
   cwnd·base/current and the connection moves to congestion avoidance.
   Both the ssthresh-too-high overshoot and the ssthresh-too-low
   undershoot of standard slow-start on long-fat paths disappear. *)
let ssthreshless ?(queue_fraction = 0.25) ?(min_samples = 4) () =
  (* Consecutive inflated samples, not a per-round minimum: the round in
     which the queue first builds always opens with un-inflated samples,
     so a round-min detector would let overflow loss win the race to the
     slow-start exit. A run of [min_samples] back-to-back queued ACKs is
     immune to isolated delayed-ACK noise yet fires mid-round, before
     the buffer fills. *)
  let consec = ref 0 in
  let reset () = consec := 0 in
  let on_ack view ~newly_acked:_ ~rtt_sample =
    let mss = float_of_int view.mss in
    match (rtt_sample, view.min_rtt ()) with
    | Some r, Some base when Sim.Time.is_positive base ->
        let queued =
          Sim.Time.to_sec r -. Sim.Time.to_sec base
          > queue_fraction *. Sim.Time.to_sec base
        in
        if queued then incr consec else consec := 0;
        if !consec >= min_samples then begin
          consec := 0;
          let target =
            view.cwnd () *. Sim.Time.to_sec base /. Sim.Time.to_sec r
          in
          { cwnd_delta = target -. view.cwnd (); exit_slow_start = true }
        end
        else no_exit mss
    | _ -> no_exit mss
  in
  { name = "ssthreshless"; on_ack; reset }

type restricted_config = {
  gains : Control.Pid.gains;
  setpoint_fraction : float;
  max_step_segments : float;
  sample_min_interval : Sim.Time.t;
}

let default_restricted_config =
  {
    (* For the plant seen by the controller — IFQ occupancy responding
       to an absolute window command with one-RTT transport delay — the
       ultimate point on the calibration path (60 ms RTT) is Kc ≈ 1,
       Tc ≈ 2·RTT = 0.12 s (bench e6 re-measures it with the in-repo ZN
       autotuner). Through the paper's rule Kp = 0.33·Kc, Ti = 0.5·Tc,
       Td = 0.33·Tc: *)
    gains = Control.Pid.pid ~kp:0.33 ~ti:0.06 ~td:0.04;
    setpoint_fraction = 0.9;
    max_step_segments = 8.;
    sample_min_interval = Sim.Time.ms 1;
  }

(* Shared core of the PID policies. [pre_step] runs before each
   controller step and may retune gains (gain scheduling). *)
let pid_policy ~name ~config ~pre_step =
  let controller =
    Control.Pid.create
      (Control.Pid.config ~out_min:0. ~out_max:1e9
         ~derivative_filter:(Sim.Time.to_sec config.sample_min_interval *. 2.)
         config.gains)
  in
  let last_step = ref None in
  let reset () =
    Control.Pid.reset controller;
    last_step := None
  in
  let on_ack view ~newly_acked:_ ~rtt_sample:_ =
    pre_step view controller;
    let now = view.now () in
    let due =
      match !last_step with
      | None -> true
      | Some prev ->
          Sim.Time.(Sim.Time.sub now prev >= config.sample_min_interval)
    in
    (* Window validation (RFC 2861 spirit): when the application, not
       cwnd, limits sending, the IFQ carries no information about the
       path — stepping the controller would only wind it up. *)
    let app_limited =
      float_of_int (view.flight ())
      < view.cwnd () -. (4. *. float_of_int view.mss)
    in
    if (not due) || app_limited then begin
      if app_limited then last_step := Some now;
      no_exit 0.
    end
    else begin
      let dt =
        match !last_step with
        | None -> Sim.Time.to_sec config.sample_min_interval
        | Some prev -> Sim.Time.to_sec (Sim.Time.sub now prev)
      in
      last_step := Some now;
      let setpoint =
        config.setpoint_fraction *. float_of_int (view.ifq_capacity ())
      in
      let error = setpoint -. float_of_int (view.ifq_occupancy ()) in
      let target_segments = Control.Pid.step controller ~dt ~error in
      let mss = float_of_int view.mss in
      let delta = (target_segments *. mss) -. view.cwnd () in
      let step_cap = config.max_step_segments *. mss in
      no_exit (Float.max (-.step_cap) (Float.min step_cap delta))
    end
  in
  { name; on_ack; reset }

(* The PID output is the *window itself*, in segments ("an output that
   determines the new value of the sender window", §3). The plant has
   no integrator from the controller's viewpoint — occupancy tracks the
   commanded window (minus the pipe's BDP, delayed one RTT) — so the
   controller's own integral term performs the ramp-up and then holds
   the bias that keeps the IFQ at its set point, while P and D regulate
   deviations. Per-step window moves are clamped to ±max_step segments
   to bound bursts into the IFQ. *)
let restricted ?(config = default_restricted_config) () =
  pid_policy ~name:"restricted" ~config ~pre_step:(fun _ _ -> ())

(* Gain-scheduled variant: Ti and Td track the measured base RTT via the
   linearized critical point (Tc = 2·RTT; the paper's rule then gives
   Ti = 0.5·Tc = RTT and Td = 0.33·Tc = 0.66·RTT). Retuning is bumpless:
   only the gain record changes, controller state is preserved. *)
let restricted_adaptive ?(config = default_restricted_config) () =
  let current = ref config.gains in
  let pre_step view controller =
    match view.min_rtt () with
    | None -> ()
    | Some rtt ->
        let rtt_s = Sim.Time.to_sec rtt in
        let target =
          { !current with Control.Pid.ti = rtt_s; td = 0.66 *. rtt_s }
        in
        let differs a b = Float.abs (a -. b) > 0.2 *. Float.max a b in
        if
          differs target.Control.Pid.ti !current.Control.Pid.ti
          || differs target.Control.Pid.td !current.Control.Pid.td
        then begin
          current := target;
          Control.Pid.set_gains controller target
        end
  in
  pid_policy ~name:"restricted-adaptive" ~config ~pre_step

let commanded ~target_segments =
  let on_ack view ~newly_acked:_ ~rtt_sample:_ =
    let target = !target_segments *. float_of_int view.mss in
    no_exit (target -. view.cwnd ())
  in
  { name = "commanded"; on_ack; reset = (fun () -> ()) }

let names =
  [ "standard"; "abc"; "limited"; "hystart"; "ssthreshless"; "restricted";
    "restricted-adaptive" ]

let by_name ?restricted_config name =
  match name with
  | "standard" -> Ok (standard ())
  | "abc" -> Ok (abc ())
  | "limited" -> Ok (limited ())
  | "hystart" -> Ok (hystart ())
  | "ssthreshless" -> Ok (ssthreshless ())
  | "restricted" -> Ok (restricted ?config:restricted_config ())
  | "restricted-adaptive" ->
      Ok (restricted_adaptive ?config:restricted_config ())
  | other -> Error (Printf.sprintf "unknown slow-start policy %S" other)
