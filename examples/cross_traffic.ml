(* §2 of the paper: the interface queue is shared by everything the
   host sends. Here a bursty on-off UDP application shares the sender's
   IFQ with the TCP flow under test. Standard slow-start both suffers
   stalls and inflicts drops on its neighbour; the restricted sender
   leaves 10% headroom by construction.

     dune exec examples/cross_traffic.exe *)

let run ~slow_start_name =
  let scenario = Core.Scenario.anl_lbnl ~seed:31 () in
  let sched = scenario.Core.Scenario.sched in
  let src = Core.Scenario.sender_host scenario in
  let dst = Core.Scenario.receiver_host scenario in
  let slow_start =
    match Tcp.Slow_start.by_name slow_start_name with
    | Ok ss -> ss
    | Error e -> failwith e
  in
  let bulk =
    Workload.Bulk.start ~src ~dst ~flow:1 ~ids:scenario.Core.Scenario.ids
      ~slow_start ~name:slow_start_name ()
  in
  (* Bursty neighbour: 20 Mbit/s peak, 50% duty cycle, same IFQ. *)
  let neighbour_rx = ref 0 in
  Netsim.Host.register_flow dst ~flow:2 (fun _ -> incr neighbour_rx);
  let neighbour =
    Workload.On_off.start ~host:src ~dst:(Netsim.Host.id dst) ~flow:2
      ~ids:scenario.Core.Scenario.ids
      ~rng:(Sim.Rng.split (Sim.Scheduler.rng sched))
      ~peak_rate:(Sim.Units.mbps 20.) ~mean_on:(Sim.Time.ms 200)
      ~mean_off:(Sim.Time.ms 200) ()
  in
  Sim.Scheduler.run ~until:(Sim.Time.sec 20) sched;
  let sender = Workload.Bulk.sender bulk in
  let offered = Workload.On_off.packets_sent neighbour in
  Printf.printf
    "%-11s tcp=%6.2f Mbit/s stalls=%-3d | neighbour delivered %d/%d \
     datagrams (%.1f%% loss at the shared IFQ)\n"
    slow_start_name
    (Workload.Bulk.goodput_mbps bulk ~at:(Sim.Time.sec 20))
    (Tcp.Sender.send_stalls sender)
    !neighbour_rx offered
    (100. *. float_of_int (offered - !neighbour_rx) /. float_of_int offered)

let () =
  print_endline
    "TCP bulk flow sharing the host interface queue with a bursty\n\
     on-off UDP application (20 s, ANL->LBNL path):\n";
  run ~slow_start_name:"standard";
  run ~slow_start_name:"restricted"
