let test_determinism () =
  let a = Sim.Rng.of_seed 7 and b = Sim.Rng.of_seed 7 in
  let xs = List.init 64 (fun _ -> Sim.Rng.bits64 a) in
  let ys = List.init 64 (fun _ -> Sim.Rng.bits64 b) in
  Alcotest.(check bool) "identical streams" true (xs = ys)

let test_seed_sensitivity () =
  let a = Sim.Rng.of_seed 7 and b = Sim.Rng.of_seed 8 in
  Alcotest.(check bool) "different seeds differ" true
    (Sim.Rng.bits64 a <> Sim.Rng.bits64 b)

let test_split_independence () =
  let parent = Sim.Rng.of_seed 7 in
  let child = Sim.Rng.split parent in
  let xs = List.init 32 (fun _ -> Sim.Rng.bits64 parent) in
  let ys = List.init 32 (fun _ -> Sim.Rng.bits64 child) in
  Alcotest.(check bool) "streams diverge" true (xs <> ys)

let test_float_range () =
  let r = Sim.Rng.of_seed 3 in
  for _ = 1 to 10_000 do
    let x = Sim.Rng.float r in
    if x < 0. || x >= 1. then Alcotest.failf "float out of range: %f" x
  done

let test_float_mean () =
  let r = Sim.Rng.of_seed 3 in
  let n = 50_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Sim.Rng.float r
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let test_int_bounds () =
  let r = Sim.Rng.of_seed 5 in
  for _ = 1 to 10_000 do
    let x = Sim.Rng.int r 17 in
    if x < 0 || x >= 17 then Alcotest.failf "int out of range: %d" x
  done;
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Sim.Rng.int r 0))

let test_exponential_mean () =
  let r = Sim.Rng.of_seed 11 in
  let n = 50_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Sim.Rng.exponential r ~mean:2.5
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "exponential mean" true (Float.abs (mean -. 2.5) < 0.1)

let test_pareto_floor () =
  let r = Sim.Rng.of_seed 13 in
  for _ = 1 to 5_000 do
    let x = Sim.Rng.pareto r ~shape:1.5 ~scale:100. in
    if x < 100. then Alcotest.failf "pareto below scale: %f" x
  done

let test_normal_moments () =
  let r = Sim.Rng.of_seed 17 in
  let n = 50_000 in
  let s = Sim.Stats.Summary.create () in
  for _ = 1 to n do
    Sim.Stats.Summary.add s (Sim.Rng.normal r ~mu:10. ~sigma:2.)
  done;
  Alcotest.(check bool) "normal mean" true
    (Float.abs (Sim.Stats.Summary.mean s -. 10.) < 0.1);
  Alcotest.(check bool) "normal sd" true
    (Float.abs (Sim.Stats.Summary.stddev s -. 2.) < 0.1)

let test_shuffle_permutation () =
  let r = Sim.Rng.of_seed 19 in
  let a = Array.init 100 Fun.id in
  Sim.Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check bool) "still a permutation" true
    (sorted = Array.init 100 Fun.id);
  Alcotest.(check bool) "actually shuffled" true (a <> Array.init 100 Fun.id)

let qcheck_uniform_bounds =
  QCheck.Test.make ~name:"uniform stays in [lo,hi)" ~count:300
    QCheck.(pair (float_bound_exclusive 100.) (float_bound_exclusive 100.))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b +. 1. in
      let r = Sim.Rng.of_seed 23 in
      let x = Sim.Rng.uniform r ~lo ~hi in
      x >= lo && x < hi)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "float mean" `Quick test_float_mean;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "pareto floor" `Quick test_pareto_floor;
    Alcotest.test_case "normal moments" `Quick test_normal_moments;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
    QCheck_alcotest.to_alcotest qcheck_uniform_bounds;
  ]
