type entry = {
  time : Time.t;
  seq : int;
  action : unit -> unit;
  mutable cancelled : bool;
}

type handle = entry

type t = {
  mutable heap : entry array;
  mutable size : int;
  mutable next_seq : int;
}

let dummy =
  { time = Time.zero; seq = -1; action = (fun () -> ()); cancelled = true }

let create ?(initial_capacity = 64) () =
  let capacity = Stdlib.max 1 initial_capacity in
  { heap = Array.make capacity dummy; size = 0; next_seq = 0 }

(* (time, seq) lexicographic order: earlier time first, then FIFO. *)
let before a b =
  let c = Time.compare a.time b.time in
  if c <> 0 then c < 0 else a.seq < b.seq

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let grow t =
  let heap = Array.make (2 * Array.length t.heap) dummy in
  Array.blit t.heap 0 heap 0 t.size;
  t.heap <- heap

let add t ~time action =
  assert (not (Time.is_negative time));
  if t.size = Array.length t.heap then grow t;
  let entry = { time; seq = t.next_seq; action; cancelled = false } in
  t.next_seq <- t.next_seq + 1;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1);
  entry

let cancel h = h.cancelled <- true
let is_cancelled h = h.cancelled

let remove_root t =
  let root = t.heap.(0) in
  t.size <- t.size - 1;
  t.heap.(0) <- t.heap.(t.size);
  t.heap.(t.size) <- dummy;
  if t.size > 0 then sift_down t 0;
  root

let rec pop t =
  if t.size = 0 then None
  else
    let root = remove_root t in
    if root.cancelled then pop t else Some (root.time, root.action)

let rec next_time t =
  if t.size = 0 then None
  else if t.heap.(0).cancelled then begin
    ignore (remove_root t);
    next_time t
  end
  else Some t.heap.(0).time

let live_count t =
  let n = ref 0 in
  for i = 0 to t.size - 1 do
    if not t.heap.(i).cancelled then incr n
  done;
  !n

let is_empty t = live_count t = 0
