(** Pluggable slow-start policies — the axis of the paper.

    A policy decides, on each ACK received while the connection is in
    the slow-start phase, how much the congestion window changes and
    whether to leave slow-start voluntarily. All byte quantities are
    unwrapped offsets/sizes; the policy never touches packets. *)

(** Read-only view of the sender and its host, handed to the policy on
    every decision. All thunks are cheap. *)
type view = {
  now : unit -> Sim.Time.t;
  mss : int;
  cwnd : unit -> float;             (** bytes *)
  ssthresh : unit -> float;         (** bytes; may be [infinity] *)
  flight : unit -> int;             (** bytes outstanding *)
  snd_una : unit -> int;            (** unwrapped cumulative-ACK offset *)
  snd_nxt : unit -> int;            (** unwrapped next-send offset *)
  srtt : unit -> Sim.Time.t option;
  min_rtt : unit -> Sim.Time.t option;
  ifq_occupancy : unit -> int;      (** host interface queue, packets *)
  ifq_capacity : unit -> int;
}

type decision = {
  cwnd_delta : float;
      (** bytes to add to cwnd (negative allowed; the sender floors the
          window at 2·MSS) *)
  exit_slow_start : bool;
      (** leave slow-start now, setting ssthresh to the current cwnd *)
}

type t = {
  name : string;
  on_ack : view -> newly_acked:int -> rtt_sample:Sim.Time.t option -> decision;
  reset : unit -> unit;
      (** called when slow-start is re-entered (after an RTO) *)
}

val standard : unit -> t
(** RFC 5681: cwnd += MSS on each ACK — exponential per-RTT doubling. *)

val abc : ?l_limit:int -> unit -> t
(** RFC 3465 Appropriate Byte Counting: cwnd grows by the number of
    bytes acknowledged, capped at [l_limit]·MSS per ACK (default L=2).
    Under delayed ACKs this restores true per-RTT doubling (plain
    per-ACK counting only reaches 1.5×), while the cap prevents
    stretch-ACKs from producing mega-bursts. *)

val limited : ?max_ssthresh_segments:int -> unit -> t
(** RFC 3742 Limited Slow-Start. Below [max_ssthresh] (default 100
    segments) behaves like {!standard}; above it the per-ACK increment
    tapers as MSS/K with K = ceil(cwnd / (0.5·max_ssthresh)), bounding
    growth to at most max_ssthresh/2 segments per RTT. *)

val hystart :
  ?ack_train_threshold:Sim.Time.t -> ?min_samples:int -> unit -> t
(** Hybrid Slow Start (Ha & Rhee). Exponential growth with two exit
    detectors: the ACK-train test (ACKs spaced < [ack_train_threshold],
    default 2 ms, whose cumulative span reaches min_rtt/2 — the window
    already covers the pipe) and the delay-increase test (the minimum
    RTT of the current round exceeds the connection minimum by
    clamp(min_rtt/8, 4 ms, 16 ms) over the first [min_samples] samples
    of a round, default 8). *)

val ssthreshless : ?queue_fraction:float -> ?min_samples:int -> unit -> t
(** SSthreshless Start (after arXiv 1401.7146): exponential growth whose
    exit is decided by the measured path, not by ssthresh. Once
    [min_samples] (default 4) consecutive RTT samples show queuing
    delay above [queue_fraction]·base_rtt (default 0.25) the pipe is
    judged full and the window is set to the BDP estimate
    cwnd·base_rtt/current_rtt on the way out of slow-start (the sender
    then pins ssthresh there). Eliminates both the overshoot (ssthresh
    too high) and undershoot (ssthresh too low) failure modes on
    long-fat networks. *)

type restricted_config = {
  gains : Control.Pid.gains;
  setpoint_fraction : float;
      (** fraction of IFQ capacity to hold, 0.9 in the paper *)
  max_step_segments : float;
      (** clamp on the per-ACK window change magnitude, in segments *)
  sample_min_interval : Sim.Time.t;
      (** PID step floor — ACKs arriving faster share one step *)
}

val default_restricted_config : restricted_config
(** Gains from running the in-repo Ziegler–Nichols autotuner against the
    calibration scenario (see DESIGN.md E0), through the paper's rule
    Kp=0.33·Kc, Ti=0.5·Tc, Td=0.33·Tc; set point 0.9, step clamp 8
    segments, 1 ms sampling floor. *)

val restricted : ?config:restricted_config -> unit -> t
(** The paper's contribution. Each PID step measures
    [error = setpoint − ifq_occupancy] (packets) and moves the window by
    the controller output (segments, clamped to ±max_step). The window
    can pause or back off as the IFQ approaches its set point, so the
    interface queue is never overrun — no send-stalls, no spurious
    congestion signals. The policy never exits slow-start by itself; the
    controller simply holds the window at the set point until a genuine
    congestion event moves the connection to congestion avoidance. *)

val restricted_adaptive : ?config:restricted_config -> unit -> t
(** {!restricted} with gain scheduling: instead of shipping constants
    tuned for one path, the integral and derivative times are rescaled
    continuously from the connection's measured minimum RTT using the
    linearized critical point (Kc ≈ 1, Tc ≈ 2·RTT) pushed through the
    paper's rule — Ti = RTT, Td = 0.66·RTT. Fixes the fixed-gain
    overshoot on paths much slower than the tuning path (experiment E9).
    [config]'s Kp is kept; its Ti/Td serve until the first RTT sample. *)

val commanded : target_segments:float ref -> t
(** Testing/calibration policy: on every ACK the window snaps to
    [!target_segments]·MSS (floored at 2·MSS by the sender). This is how
    the Ziegler–Nichols harness drives the real simulated IFQ plant with
    an externally chosen window. Never exits slow-start. *)

val by_name :
  ?restricted_config:restricted_config -> string -> (t, string) result
(** "standard" | "abc" | "limited" | "hystart" | "ssthreshless" |
    "restricted" | "restricted-adaptive" — for CLIs. *)

val names : string list
(** Every key {!by_name} accepts, in documentation order. *)
