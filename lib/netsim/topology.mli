(** Canned topologies used by the experiments. *)

(** The topology-cut pass: the partition structure a topology admits.
    [parts] islands of hosts/routers, connected only by the [boundaries]
    links; each boundary link's propagation delay is the lookahead its
    channel grants the conservative synchronizer. The cut depends only
    on the topology — worker count never changes it, which is what makes
    partitioned runs byte-identical at any [--domains]. *)
module Cut : sig
  type boundary = {
    link : Link.t;
    src : int;  (** partition owning the transmit side *)
    dst : int;  (** partition owning the delivery side *)
  }

  type t = { parts : int; boundaries : boundary list }

  val single : t
  (** The trivial cut: one partition, no boundaries. *)

  val lookahead : boundary -> Sim.Time.t
  (** The boundary link's propagation delay. *)

  val min_lookahead : t -> Sim.Time.t
  (** Minimum lookahead over all boundaries ([max_int] ns when there are
      none) — the horizon increment the partitioned engine advances by. *)
end

(** Two hosts joined by a symmetric duplex pipe. The sender's NIC is the
    path bottleneck, so queueing happens in the sender's IFQ — the
    configuration of the paper's ANL→LBNL testbed. *)
module Duplex : sig
  type t = {
    a : Host.t;
    b : Host.t;
    a_to_b : Link.t;
    b_to_a : Link.t;
  }

  val create :
    Sim.Scheduler.t ->
    rate:Sim.Units.rate ->
    one_way_delay:Sim.Time.t ->
    ifq_capacity:int ->
    ?loss_rate:float ->
    ?ifq_red_ecn:Queue_disc.red_params ->
    unit ->
    t
  (** Node ids: a = 0, b = 1. [loss_rate] applies to the a→b direction
      only (data path). [ifq_red_ecn] switches both hosts' interface
      queues to RED with ECN marking. *)

  val create_split :
    Sim.Scheduler.t ->
    Sim.Scheduler.t ->
    rate:Sim.Units.rate ->
    one_way_delay:Sim.Time.t ->
    ifq_capacity:int ->
    ?loss_rate:float ->
    ?ifq_red_ecn:Queue_disc.red_params ->
    unit ->
    t * Cut.t
  (** [create_split sched_a sched_b ...] is {!create} with host a built
      on [sched_a] and host b on [sched_b], and both pipe directions
      reported as cut boundaries (lookahead = [one_way_delay]). The
      construction order and RNG draws mirror {!create} exactly — the
      forward link's loss stream is split from [sched_a]'s RNG — so with
      equal seeds the 2-partition build replays the single-scheduler
      build's random decisions verbatim. *)
end

(** N left hosts — router L — bottleneck — router R — N right hosts.
    Left host [i] talks to right host [i]. Router queues bound the
    bottleneck; access links are fast relative to it. *)
module Dumbbell : sig
  type t = {
    left : Host.t array;
    right : Host.t array;
    router_l : Router.t;
    router_r : Router.t;
    bottleneck_queue_lr : Queue_disc.t;
    bottleneck_queue_rl : Queue_disc.t;
    bottleneck_lr : Link.t;  (** left→right bottleneck pipe *)
    bottleneck_rl : Link.t;  (** right→left bottleneck pipe *)
  }

  val create :
    Sim.Scheduler.t ->
    pairs:int ->
    access_rate:Sim.Units.rate ->
    access_delay:Sim.Time.t ->
    bottleneck_rate:Sim.Units.rate ->
    bottleneck_delay:Sim.Time.t ->
    buffer_packets:int ->
    ifq_capacity:int ->
    ?red:Queue_disc.red_params ->
    unit ->
    t
  (** Node ids: left hosts 0..pairs-1, right hosts 100..100+pairs-1,
      routers 1000/1001. With [?red], the bottleneck queues run RED
      instead of drop-tail. *)

  val right_id : int -> int
  (** Node id of right host [i]. *)
end

(** [segments] dumbbells chained left-to-right through duplex core
    links — the canonical partitionable topology. Each segment is an
    island (assigned to one partition); the core links are the cut and
    carry their propagation delay as lookahead. Node ids are globally
    unique by segment block: segment [s] uses [10000·s + local] where
    local ids follow {!Dumbbell} (left [i], right [100+i], routers
    [1000]/[1001]). *)
module Multi_dumbbell : sig
  type segment = {
    left : Host.t array;
    right : Host.t array;
    router_l : Router.t;
    router_r : Router.t;
    bottleneck_queue_lr : Queue_disc.t;
    bottleneck_queue_rl : Queue_disc.t;
    bottleneck_lr : Link.t;
    bottleneck_rl : Link.t;
  }

  type t = {
    segments : segment array;
    core_lr : Link.t array;
        (** [s]: segment [s]'s right router → segment [s+1]'s left router *)
    core_rl : Link.t array;  (** the reverse direction *)
    cut : Cut.t;
  }

  val create :
    sched_of:(int -> Sim.Scheduler.t) ->
    segments:int ->
    pairs:int ->
    access_rate:Sim.Units.rate ->
    access_delay:Sim.Time.t ->
    bottleneck_rate:Sim.Units.rate ->
    bottleneck_delay:Sim.Time.t ->
    core_rate:Sim.Units.rate ->
    core_delay:Sim.Time.t ->
    buffer_packets:int ->
    ifq_capacity:int ->
    ?red:Queue_disc.red_params ->
    ?cross_pairs:int ->
    unit ->
    t
  (** [sched_of s] supplies segment [s]'s scheduler: pass a constant for
      a single-scheduler build, per-partition schedulers for the
      partitioned one — the construction order (and thus every derived
      RNG stream) is identical either way. [cross_pairs] (default 0, at
      most [segments-1]) additionally routes left host 0 of segment [c]
      to right host 0 of segment [c+1] across the core for
      [c < cross_pairs] — traffic that exercises the partition
      boundary. Raises [Invalid_argument] on out-of-range [segments],
      [pairs] (1..100) or [cross_pairs]. *)

  val left_id : int -> int -> int
  val right_id : int -> int -> int
  val router_l_id : int -> int
  val router_r_id : int -> int
  val segment_of_id : int -> int
  (** The segment block a node id belongs to. *)
end
