(* rss_sim — command-line front end to the Restricted Slow-Start
   simulator.

     rss_sim run --slow-start restricted --duration 25
     rss_sim compare --rtt-ms 120
     rss_sim calibrate *)

open Cmdliner

(* --- shared options ---------------------------------------------------- *)

let rate_mbps =
  let doc = "Path line rate in Mbit/s." in
  Arg.(value & opt float 100. & info [ "rate" ] ~docv:"MBPS" ~doc)

let rtt_ms =
  let doc = "Path round-trip time in milliseconds." in
  Arg.(value & opt int 60 & info [ "rtt-ms" ] ~docv:"MS" ~doc)

let ifq =
  let doc = "Interface queue capacity in packets (Linux txqueuelen)." in
  Arg.(value & opt int 100 & info [ "ifq" ] ~docv:"PKTS" ~doc)

let duration_s =
  let doc = "Simulated duration in seconds." in
  Arg.(value & opt float 25. & info [ "duration" ] ~docv:"SECONDS" ~doc)

let seed =
  let doc = "Deterministic random seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)

let loss =
  let doc = "Independent forward-path loss probability (0..1)." in
  Arg.(value & opt float 0. & info [ "loss" ] ~docv:"P" ~doc)

let spec_of ~rate_mbps ~rtt_ms ~ifq ~duration_s ~seed ~loss =
  {
    Core.Run.default_spec with
    rate = Sim.Units.mbps rate_mbps;
    one_way_delay = Sim.Time.ms (rtt_ms / 2);
    ifq_capacity = ifq;
    duration = Sim.Time.of_sec duration_s;
    seed;
    loss_rate = loss;
  }

let positive_int =
  let parse s =
    match Arg.conv_parser Arg.int s with
    | Ok n when n >= 1 -> Ok n
    | Ok n -> Error (`Msg (Printf.sprintf "expected N >= 1, got %d" n))
    | Error _ as e -> e
  in
  Arg.conv (parse, Arg.conv_printer Arg.int)

let print_result (r : Core.Run.result) =
  Printf.printf
    "%-11s  goodput %7.2f Mbit/s  util %5.1f%%  stalls %-3d cong.signals \
     %-3d retx %-4d timeouts %-2d cwnd %7.1f seg  mean IFQ %6.1f\n"
    r.Core.Run.label r.Core.Run.goodput_mbps
    (100. *. r.Core.Run.utilization)
    r.Core.Run.send_stalls r.Core.Run.congestion_signals
    r.Core.Run.retransmits r.Core.Run.timeouts r.Core.Run.final_cwnd_segments
    r.Core.Run.mean_ifq

(* --- run --spec --------------------------------------------------------- *)

let ensure_dir = Serve.Artifacts.ensure_dir
let sanitize = Serve.Artifacts.sanitize

(* Per-cell failure table: a poisoned cell must cost its row, not the
   batch — print every failure, then exit non-zero. *)
let print_failure_table failures =
  Printf.eprintf "%d cell(s) failed:\n" (List.length failures);
  List.iter
    (fun (f : Engine.Pool.failure) ->
      Printf.eprintf "  %-44s %s\n" f.Engine.Pool.flabel
        (Printexc.to_string f.Engine.Pool.fexn))
    failures

let print_path_stats (p : Core.Spec.path_stats) =
  Printf.printf
    "path         aggregate %6.2f Mbit/s  jain %6.4f  queue mean %6.1f \
     peak %4.0f  router drops %d\n"
    p.Core.Spec.aggregate_goodput_mbps p.Core.Spec.jain_index
    p.Core.Spec.queue_mean p.Core.Spec.queue_peak p.Core.Spec.router_drops

let load_spec path =
  let contents =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error e ->
      prerr_endline e;
      exit 2
  in
  match Report.Json.of_string contents with
  | Error e ->
      Printf.eprintf "%s: %s\n" path e;
      exit 2
  | Ok json -> (
      match Core.Spec.of_json json with
      | Error e ->
          Printf.eprintf "%s: %s\n" path e;
          exit 2
      | Ok spec -> spec)

let run_spec ~jobs spec =
  let verdicts =
    if jobs > 1 then
      Engine.Pool.with_pool ~jobs (fun pool ->
          Core.Spec.run_batch_collect ~pool [ spec ])
    else Core.Spec.run_batch_collect [ spec ]
  in
  match verdicts with
  | [ Ok outcome ] -> outcome
  | [ Error { Engine.Pool.fexn = Invalid_argument e; _ } ] ->
      (* a malformed spec is a usage error, not a poisoned cell *)
      prerr_endline e;
      exit 2
  | [ Error failure ] ->
      print_failure_table [ failure ];
      exit 1
  | _ -> assert false

let run_spec_file ~path ~jobs ~domains ~out_dir ~checkpoint ~checkpoint_every
    ~resume =
  let spec = load_spec path in
  let spec =
    match domains with
    | None -> spec
    | Some d -> { spec with Core.Spec.domains = d }
  in
  let outcome =
    match (checkpoint, resume) with
    | None, None -> run_spec ~jobs spec
    | _ -> (
        let ck =
          Option.map
            (fun snapshot_path ->
              {
                Core.Spec.snapshot_path;
                interval = Sim.Time.of_sec checkpoint_every;
                should_stop = (fun () -> false);
              })
            checkpoint
        in
        try Core.Spec.run ?checkpoint:ck ?resume_from:resume spec
        with
        | Invalid_argument e ->
            prerr_endline e;
            exit 2
        | e ->
            print_failure_table
              [
                {
                  Engine.Pool.flabel = spec.Core.Spec.name;
                  fexn = e;
                  fbacktrace = Printexc.get_backtrace ();
                };
              ];
            exit 1)
  in
  List.iter print_result outcome.Core.Spec.results;
  print_path_stats outcome.Core.Spec.path;
  match out_dir with
  | None -> ()
  | Some dir ->
      let paths = Serve.Artifacts.write_outcome ~dir spec outcome in
      List.iter (Printf.printf "wrote %s\n") paths

(* --- run ---------------------------------------------------------------- *)

let run_cmd =
  let slow_start =
    let doc = "Slow-start policy: standard | limited | hystart | restricted." in
    Arg.(value & opt string "restricted" & info [ "slow-start"; "s" ] ~doc)
  in
  let local_congestion =
    let doc = "Reaction to send-stalls: halve | cwr | ignore." in
    Arg.(value & opt string "halve" & info [ "local-congestion" ] ~doc)
  in
  let bytes =
    let doc = "Transfer size in bytes (default: saturating)." in
    Arg.(value & opt (some int) None & info [ "bytes" ] ~docv:"N" ~doc)
  in
  let csv_prefix =
    let doc = "Write cwnd/stall/IFQ time series as PREFIX_<name>.csv." in
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"PREFIX" ~doc)
  in
  let pacing =
    let doc = "Pace data segments (sch_fq-style)." in
    Arg.(value & flag & info [ "pacing" ] ~doc)
  in
  let cc =
    let doc = "Congestion avoidance: reno | cubic | vegas." in
    Arg.(value & opt string "reno" & info [ "cc" ] ~doc)
  in
  let chart =
    let doc = "Draw an ASCII chart of the window trajectory." in
    Arg.(value & flag & info [ "chart" ] ~doc)
  in
  let spec_file =
    let doc =
      "Run the scenario described by a JSON spec file instead of the \
       single-flow path options (see $(b,rss_sim spec --print-default) \
       for the schema). Prints one line per flow plus path statistics."
    in
    Arg.(value & opt (some string) None & info [ "spec" ] ~docv:"FILE" ~doc)
  in
  let jobs =
    let doc =
      "Worker domains when running a --spec scenario (1 disables \
       parallelism). Output is byte-identical for any value."
    in
    Arg.(value & opt positive_int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let domains =
    let doc =
      "With --spec: override the spec's \"domains\" — worker domains \
       $(i,inside) the scenario, partitioning the topology across its \
       cut links (conservative-lookahead parallel DES). Needs a \
       cut-capable topology (duplex or dumbbell_of_dumbbells). \
       Artifacts are byte-identical for any value; composes with \
       --jobs, which parallelises $(i,across) scenarios."
    in
    Arg.(
      value
      & opt (some positive_int) None
      & info [ "domains" ] ~docv:"N" ~doc)
  in
  let out_dir =
    let doc =
      "With --spec: write the outcome as JSON (and per-flow series CSVs \
       when the spec records series) under this directory."
    in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"DIR" ~doc)
  in
  let checkpoint =
    let doc =
      "With --spec: snapshot the run to FILE every --checkpoint-every \
       simulated seconds (atomic write; the previous good image is kept \
       as FILE.prev). Requires a snapshot-supported spec: one \
       many_flows flow starting at t=0, no faults, no trace."
    in
    Arg.(
      value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)
  in
  let checkpoint_every =
    let doc = "Simulated seconds between checkpoints." in
    Arg.(
      value & opt float 1.
      & info [ "checkpoint-every" ] ~docv:"SECONDS" ~doc)
  in
  let resume =
    let doc =
      "With --spec: resume from a snapshot FILE written by --checkpoint \
       for the $(i,same) spec. The completed run's artifacts are \
       byte-identical to an unbroken run."
    in
    Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"FILE" ~doc)
  in
  let action slow_start local_congestion bytes csv_prefix pacing cc
      chart spec_file jobs domains out_dir checkpoint checkpoint_every resume
      rate_mbps rtt_ms ifq duration_s seed loss =
    match spec_file with
    | Some path ->
        run_spec_file ~path ~jobs ~domains ~out_dir ~checkpoint
          ~checkpoint_every ~resume
    | None ->
    if checkpoint <> None || resume <> None then begin
      prerr_endline "--checkpoint/--resume require --spec";
      exit 2
    end;
    if domains <> None then begin
      prerr_endline "--domains requires --spec";
      exit 2
    end;
    let cong_avoid =
      match cc with
      | "reno" -> Core.Run.Reno
      | "cubic" -> Core.Run.Cubic
      | "vegas" -> Core.Run.Vegas
      | other ->
          Printf.eprintf "unknown congestion avoidance %S\n" other;
          exit 2
    in
    match Tcp.Local_congestion.of_string local_congestion with
    | Error e ->
        prerr_endline e;
        exit 2
    | Ok policy -> (
        let spec =
          {
            (spec_of ~rate_mbps ~rtt_ms ~ifq ~duration_s ~seed ~loss) with
            Core.Run.slow_start;
            local_congestion = policy;
            bytes;
            pacing;
            cong_avoid;
          }
        in
        try
          let r = Core.Run.bulk spec in
          print_result r;
          (match r.Core.Run.completion with
          | Some t ->
              Printf.printf "transfer completed at t=%.3f s\n"
                (Sim.Time.to_sec t)
          | None -> ());
          if chart then
            print_string
              (Report.Ascii_chart.line_chart
                 ~title:"congestion window (segments)" ~x_label:"time (s)"
                 ~y_label:"cwnd"
                 [
                   Report.Ascii_chart.of_series ~label:r.Core.Run.label
                     r.Core.Run.cwnd_series;
                 ]);
          match csv_prefix with
          | None -> ()
          | Some prefix ->
              List.iter
                (fun (tag, series) ->
                  let path = Printf.sprintf "%s_%s.csv" prefix tag in
                  Report.Csv.write_series ~path ~name:tag series;
                  Printf.printf "wrote %s\n" path)
                [
                  ("cwnd", r.Core.Run.cwnd_series);
                  ("stalls", r.Core.Run.stalls_series);
                  ("ifq", r.Core.Run.ifq_series);
                  ("throughput", r.Core.Run.throughput_series);
                ]
        with Invalid_argument e ->
          prerr_endline e;
          exit 2)
  in
  let term =
    Term.(
      const action $ slow_start $ local_congestion $ bytes $ csv_prefix
      $ pacing $ cc $ chart $ spec_file $ jobs $ domains $ out_dir
      $ checkpoint $ checkpoint_every $ resume $ rate_mbps $ rtt_ms $ ifq
      $ duration_s $ seed $ loss)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run one bulk transfer (or, with --spec, a JSON-described \
          scenario) and report web100 counters.")
    term

(* --- compare ------------------------------------------------------------ *)

let compare_cmd =
  let jobs =
    let doc =
      "Worker domains for the policy runs (default: all cores; 1 \
       disables parallelism). Output is identical for any value."
    in
    Arg.(
      value
      & opt positive_int (Engine.Pool.default_jobs ())
      & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let matrix =
    let doc =
      "Full arena: every registered congestion-control policy crossed \
       with every arena scenario (paper-path, lossy-wan, \
       shared-bottleneck and the chaos-bursty fault profile), scored \
       into a league table. --rate/--rtt-ms/--ifq/--loss are ignored \
       (scenarios define their own paths); --duration and --seed apply \
       to every cell."
    in
    Arg.(value & flag & info [ "matrix" ] ~doc)
  in
  let policies =
    let doc =
      "With --matrix: restrict to a comma-separated subset of the \
       registered policies (see $(b,rss_sim list))."
    in
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "policies" ] ~docv:"NAMES" ~doc)
  in
  let scenarios =
    let doc =
      "With --matrix: restrict to a comma-separated subset of the arena \
       scenarios (see $(b,rss_sim list))."
    in
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "scenarios" ] ~docv:"NAMES" ~doc)
  in
  let out_dir =
    let doc =
      "With --matrix: write the matrix as CSV and JSON (league included) \
       under this directory."
    in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"DIR" ~doc)
  in
  let run_matrix ~jobs ~policies ~scenarios ~out_dir ~duration_s ~seed =
    let duration = Sim.Time.of_sec duration_s in
    let table, failures =
      try
        if jobs > 1 then
          Engine.Pool.with_pool ~jobs (fun pool ->
              Core.Arena.run_collect ~pool ?policies ?scenarios ~duration
                ~seed ())
        else Core.Arena.run_collect ?policies ?scenarios ~duration ~seed ()
      with Invalid_argument e ->
        prerr_endline e;
        exit 2
    in
    print_string (Core.Arena.render table);
    (match out_dir with
    | None -> ()
    | Some dir ->
        ensure_dir dir;
        let csv_path = Filename.concat dir "policy_matrix.csv" in
        Report.Csv.write_string ~path:csv_path (Core.Arena.to_csv table);
        Printf.printf "wrote %s\n" csv_path;
        let json_path = Filename.concat dir "policy_matrix.json" in
        Report.Csv.write_string ~path:json_path
          (Report.Json.to_string (Core.Arena.to_json table));
        Printf.printf "wrote %s\n" json_path);
    if failures <> [] then begin
      print_failure_table failures;
      exit 1
    end
  in
  let action jobs matrix policies scenarios out_dir rate_mbps rtt_ms ifq
      duration_s seed loss =
    if matrix then
      run_matrix ~jobs ~policies ~scenarios ~out_dir ~duration_s ~seed
    else begin
      let spec = spec_of ~rate_mbps ~rtt_ms ~ifq ~duration_s ~seed ~loss in
      let cells =
        List.map
          (fun name -> (Some name, { spec with Core.Run.slow_start = name }))
          [ "standard"; "limited"; "hystart"; "restricted" ]
      in
      let verdicts =
        if jobs > 1 then
          Engine.Pool.with_pool ~jobs (fun pool ->
              Core.Run.bulk_batch_collect ~pool cells)
        else Core.Run.bulk_batch_collect cells
      in
      List.iter (function Ok r -> print_result r | Error _ -> ()) verdicts;
      let failures =
        List.filter_map
          (function Ok _ -> None | Error f -> Some f)
          verdicts
      in
      if failures <> [] then begin
        print_failure_table failures;
        exit 1
      end
    end
  in
  let term =
    Term.(
      const action $ jobs $ matrix $ policies $ scenarios $ out_dir
      $ rate_mbps $ rtt_ms $ ifq $ duration_s $ seed $ loss)
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Run every slow-start policy on the same path and compare; with \
          --matrix, run the full policy-zoo arena and print a league \
          table.")
    term

(* --- chaos --------------------------------------------------------------- *)

let chaos_cmd =
  let cases =
    let doc = "Number of random fault schedules to generate and run." in
    Arg.(value & opt int 20 & info [ "cases"; "n" ] ~docv:"N" ~doc)
  in
  let jobs =
    let doc =
      "Worker domains for the sweep (1 disables parallelism). Outcomes \
       are identical for any value."
    in
    Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let out_dir =
    let doc = "Directory for failure artifacts." in
    Arg.(
      value
      & opt string "results/chaos_failures"
      & info [ "out" ] ~docv:"DIR" ~doc)
  in
  let replay =
    let doc =
      "Re-run the case stored in a failure artifact and check that the \
       fresh trace is byte-identical."
    in
    Arg.(value & opt (some file) None & info [ "replay" ] ~docv:"FILE" ~doc)
  in
  let action cases jobs out_dir replay seed =
    match replay with
    | Some path -> (
        match Core.Chaos.replay path with
        | Error e ->
            Printf.eprintf "replay failed: %s\n" e;
            exit 1
        | Ok (outcome, identical) ->
            Printf.printf "replayed %s: %s, trace %s\n"
              (Core.Chaos.case_name outcome.Core.Chaos.case)
              (if Core.Chaos.passed outcome then "passed"
               else
                 Printf.sprintf "%d violation(s)"
                   (List.length outcome.Core.Chaos.violations))
              (if identical then "byte-identical to artifact"
               else "DIVERGED from artifact");
            List.iter
              (fun v -> Printf.printf "  violation: %s\n" v)
              outcome.Core.Chaos.violations;
            if not identical then exit 1;
            if not (Core.Chaos.passed outcome) then exit 3)
    | None ->
        let case_list = Core.Chaos.random_cases ~root:seed cases in
        let outcomes =
          if jobs > 1 then
            Engine.Pool.with_pool ~jobs (fun pool ->
                Core.Chaos.run_sweep ~pool case_list)
          else Core.Chaos.run_sweep case_list
        in
        List.iter
          (fun (o : Core.Chaos.outcome) ->
            Printf.printf "%-28s %-6s acked %8d  timeouts %-3d retx %-4d\n"
              (Core.Chaos.case_name o.Core.Chaos.case)
              (if Core.Chaos.passed o then "ok" else "FAIL")
              o.Core.Chaos.bytes_acked o.Core.Chaos.timeouts
              o.Core.Chaos.retransmits;
            List.iter
              (fun v -> Printf.printf "    violation: %s\n" v)
              o.Core.Chaos.violations)
          outcomes;
        let failures =
          List.filter (fun o -> not (Core.Chaos.passed o)) outcomes
        in
        if failures <> [] then begin
          let paths = Core.Chaos.write_failures ~dir:out_dir failures in
          List.iter (Printf.printf "wrote %s\n") paths;
          Printf.printf "%d of %d cases failed; replay with: rss_sim chaos \
                         --replay <file>\n"
            (List.length failures) (List.length outcomes);
          exit 3
        end
        else Printf.printf "all %d cases passed\n" (List.length outcomes)
  in
  let term = Term.(const action $ cases $ jobs $ out_dir $ replay $ seed) in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Sweep random fault schedules (burst loss, reordering, \
          duplication, outages) through the simulator and check \
          invariants; failures are written as replayable JSON artifacts.")
    term

(* --- serve --------------------------------------------------------------- *)

let serve_cmd =
  let spool =
    let doc = "Directory scanned for Spec-JSON job files (NAME.json)." in
    Arg.(
      value
      & opt string "results/serve/spool"
      & info [ "spool" ] ~docv:"DIR" ~doc)
  in
  let state =
    let doc =
      "State directory: the job journal, per-job snapshots, outcome \
       artifacts and quarantined failures live here. Restarting with \
       the same --state recovers the queue."
    in
    Arg.(
      value
      & opt string "results/serve/state"
      & info [ "state" ] ~docv:"DIR" ~doc)
  in
  let jobs =
    let doc = "Worker domains (1 disables parallelism)." in
    Arg.(value & opt positive_int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let checkpoint_every =
    let doc = "Simulated seconds between job checkpoints." in
    Arg.(
      value & opt float 1.
      & info [ "checkpoint-every" ] ~docv:"SECONDS" ~doc)
  in
  let max_attempts =
    let doc =
      "Attempts before a repeatedly failing job is quarantined."
    in
    Arg.(value & opt positive_int 3 & info [ "max-attempts" ] ~docv:"N" ~doc)
  in
  let backoff_base =
    let doc = "Retry backoff base in seconds (attempt n waits base*2^(n-1))." in
    Arg.(value & opt float 0.05 & info [ "backoff-base" ] ~docv:"SECONDS" ~doc)
  in
  let backoff_max =
    let doc = "Retry backoff ceiling in seconds." in
    Arg.(value & opt float 2. & info [ "backoff-max" ] ~docv:"SECONDS" ~doc)
  in
  let deadline =
    let doc =
      "Watchdog: wall seconds a job may run before it is drained to its \
       snapshot and requeued (snapshot-supported jobs only)."
    in
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS" ~doc)
  in
  let poll =
    let doc = "Spool scan period in seconds." in
    Arg.(value & opt float 0.2 & info [ "poll" ] ~docv:"SECONDS" ~doc)
  in
  let once =
    let doc =
      "Drain the current queue (spool + recovered jobs + stdin) and \
       exit instead of watching the spool forever."
    in
    Arg.(value & flag & info [ "once" ] ~doc)
  in
  let from_stdin =
    let doc =
      "Read one Spec JSON (or a JSON array of specs) from stdin and \
       submit before the first spool scan."
    in
    Arg.(value & flag & info [ "stdin" ] ~doc)
  in
  let quiet =
    let doc = "Suppress per-job progress lines." in
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc)
  in
  let replay_quarantine =
    let doc =
      "Re-run the spec embedded in a quarantine artifact once, in \
       process, and exit (non-zero if it still fails)."
    in
    Arg.(
      value
      & opt (some file) None
      & info [ "replay-quarantine" ] ~docv:"FILE" ~doc)
  in
  let action spool state jobs checkpoint_every max_attempts backoff_base
      backoff_max deadline poll once from_stdin quiet replay_quarantine =
    match replay_quarantine with
    | Some path -> (
        match Serve.Supervisor.quarantine_spec ~path with
        | Error e ->
            Printf.eprintf "replay failed: %s\n" e;
            exit 2
        | Ok spec -> (
            try
              let outcome = Core.Spec.run spec in
              List.iter print_result outcome.Core.Spec.results;
              print_path_stats outcome.Core.Spec.path;
              Printf.printf "quarantined job replayed clean\n"
            with e ->
              Printf.eprintf "quarantined job still fails: %s\n"
                (Printexc.to_string e);
              exit 1))
    | None ->
        let specs =
          if not from_stdin then []
          else
            let contents = In_channel.input_all Stdlib.stdin in
            if String.trim contents = "" then []
            else
              match Report.Json.of_string contents with
              | Error e ->
                  Printf.eprintf "stdin: %s\n" e;
                  exit 2
              | Ok json -> (
                  let parse j =
                    match Core.Spec.of_json j with
                    | Ok spec -> spec
                    | Error e ->
                        Printf.eprintf "stdin spec: %s\n" e;
                        exit 2
                  in
                  match json with
                  | Report.Json.List items -> List.map parse items
                  | j -> [ parse j ])
        in
        let stop = Atomic.make false in
        let drain _ = Atomic.set stop true in
        Sys.set_signal Sys.sigterm (Sys.Signal_handle drain);
        Sys.set_signal Sys.sigint (Sys.Signal_handle drain);
        let log =
          if quiet then ignore
          else fun line ->
            print_endline line;
            flush Stdlib.stdout
        in
        let config =
          {
            Serve.Supervisor.spool;
            state_dir = state;
            jobs;
            checkpoint_every = Sim.Time.of_sec checkpoint_every;
            max_attempts;
            backoff_base;
            backoff_max;
            deadline;
            poll_interval = poll;
            once;
            log;
          }
        in
        let stats = Serve.Supervisor.run ~stop ~specs config in
        Printf.printf
          "serve: %d completed (%d resumed), %d quarantined, %d \
           retries, %d drains\n"
          stats.Serve.Supervisor.completed stats.Serve.Supervisor.resumed
          stats.Serve.Supervisor.quarantined stats.Serve.Supervisor.retries
          stats.Serve.Supervisor.drains;
        if stats.Serve.Supervisor.quarantined > 0 then exit 3
  in
  let term =
    Term.(
      const action $ spool $ state $ jobs $ checkpoint_every
      $ max_attempts $ backoff_base $ backoff_max $ deadline $ poll
      $ once $ from_stdin $ quiet $ replay_quarantine)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Supervised job service: run Spec-JSON jobs from a spool \
          directory (or stdin) with a write-ahead journal, periodic \
          snapshots, crash recovery, retry with exponential backoff, \
          and quarantine for poisoned jobs. Kill it at any moment — \
          SIGKILL included — and a restart with the same --state \
          resumes where it stopped, byte-identically.")
    term

(* --- trace --------------------------------------------------------------- *)

let trace_cmd =
  let spec_file =
    let doc = "JSON scenario spec to run under the tracer." in
    Arg.(
      required
      & opt (some file) None
      & info [ "spec" ] ~docv:"FILE" ~doc)
  in
  let out_dir =
    let doc =
      "Directory for the artifacts: <name>_events.csv (the event ring), \
       <name>_trace.json (Chrome trace_event, load in chrome://tracing \
       or Perfetto) and <name>_metrics.csv (the unified metrics \
       registry sampled every sample_period)."
    in
    Arg.(value & opt string "results/trace" & info [ "out" ] ~docv:"DIR" ~doc)
  in
  let jobs =
    let doc =
      "Worker domains (1 disables parallelism). Artifacts are \
       byte-identical for any value."
    in
    Arg.(value & opt positive_int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let capacity =
    let doc =
      "Override the spec's trace_capacity (ring size in records; oldest \
       records are overwritten beyond it)."
    in
    Arg.(value & opt (some int) None & info [ "capacity" ] ~docv:"N" ~doc)
  in
  let action spec_path out_dir jobs capacity =
    let spec = load_spec spec_path in
    (* The subcommand's whole point is tracing: force it on, whatever
       the spec says. *)
    let spec =
      {
        spec with
        Core.Spec.record_trace = true;
        trace_capacity =
          (match capacity with
          | Some c -> c
          | None -> spec.Core.Spec.trace_capacity);
      }
    in
    let outcome = run_spec ~jobs spec in
    List.iter print_result outcome.Core.Spec.results;
    print_path_stats outcome.Core.Spec.path;
    let tr =
      match outcome.Core.Spec.trace with
      | Some tr -> tr
      | None -> assert false (* record_trace was forced on *)
    in
    Printf.printf
      "trace        %d record(s) retained, %d dropped (ring capacity %d)\n"
      (Trace.length tr) (Trace.dropped tr) (Trace.capacity tr);
    ensure_dir out_dir;
    let base = sanitize spec.Core.Spec.name in
    let write name content =
      let path = Filename.concat out_dir (base ^ name) in
      Report.Csv.write_string ~path content;
      Printf.printf "wrote %s\n" path
    in
    write "_events.csv" (Report.Trace_event.to_csv tr);
    write "_trace.json"
      (Report.Trace_event.to_chrome ~name:spec.Core.Spec.name tr);
    match outcome.Core.Spec.metrics with
    | None -> ()
    | Some m ->
        let path = Filename.concat out_dir (base ^ "_metrics.csv") in
        Report.Csv.write ~path
          ~header:("time_s" :: m.Core.Spec.metric_names)
          ~rows:
            (List.map
               (fun (t, values) -> t :: Array.to_list values)
               m.Core.Spec.samples);
        Printf.printf "wrote %s\n" path
  in
  let term = Term.(const action $ spec_file $ out_dir $ jobs $ capacity) in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a JSON-described scenario with the run-wide event tracer \
          and metrics registry attached, then export the ring as CSV \
          and Chrome trace_event JSON plus a metrics time-series CSV. \
          Deterministic: artifacts are byte-identical at any --jobs.")
    term

(* --- list ---------------------------------------------------------------- *)

let list_cmd =
  (* The experiment sections live in bench/main.ml (an executable, not a
     library), so the catalog is mirrored here by hand. *)
  let experiments =
    [
      ("fig1", "cumulative send-stall signals, 0-25 s (paper figure 1)");
      ("table1", "§4 throughput claim (paper: ~40% improvement)");
      ("e2", "slow-start variant comparison on the paper path");
      ("e3", "throughput vs interface-queue size (std vs RSS)");
      ("e4", "throughput vs round-trip time (std vs RSS)");
      ("e5", "slow-start overshoot loss at a network bottleneck");
      ("e6", "PID tuning ablation (ZN experiment on the live simulator)");
      ("e7", "local-congestion policy ablation");
      ("e8", "friendliness: RSS vs Reno on a shared bottleneck");
      ("e9", "gain scheduling: fixed vs RTT-adaptive RSS");
      ("e10", "does pacing alone prevent send-stalls?");
      ("e11", "parallel GridFTP-style streams sharing one host");
      ("e12", "ECN marking on the local qdisc vs the RSS controller");
      ("e13", "robustness sweeps (cross-traffic, faults, short flows)");
      ("e14", "the latency cost of a standing queue");
      ("micro", "microbenchmarks (Bechamel, monotonic clock)");
    ]
  in
  let action () =
    print_endline
      "experiments (bench sections; run with: dune exec bench/main.exe -- \
       SECTION):";
    List.iter
      (fun (name, doc) -> Printf.printf "  %-8s %s\n" name doc)
      experiments;
    print_endline "";
    print_endline
      "slow-start policies (--slow-start NAME / spec flow \"slow_start\"):";
    List.iter (Printf.printf "  %s\n") Tcp.Slow_start.names;
    print_endline "";
    print_endline
      "congestion-control policies (compare --matrix / spec flow \
       \"policy\"):";
    List.iter
      (fun (name, doc) -> Printf.printf "  %-19s %s\n" name doc)
      (Tcp.Policy.docs ());
    print_endline "";
    print_endline "arena scenarios (compare --matrix columns):";
    List.iter
      (fun (s : Core.Arena.scenario) ->
        Printf.printf "  %-19s %s\n" s.Core.Arena.sname s.Core.Arena.sdoc)
      Core.Arena.scenarios;
    print_endline "";
    print_endline "workload kinds (spec flow \"workload\".\"kind\"):";
    List.iter (Printf.printf "  %s\n") Core.Spec.workload_kinds
  in
  Cmd.v
    (Cmd.info "list"
       ~doc:
         "List the experiment catalog, slow-start policies and workload \
          kinds.")
    Term.(const action $ const ())

(* --- spec ---------------------------------------------------------------- *)

let spec_cmd =
  let print_default =
    let doc =
      "Print a commented spec-file template (\"_doc\" keys explain each \
       field; they are ignored by the parser)."
    in
    Arg.(value & flag & info [ "print-default" ] ~doc)
  in
  let validate =
    let doc =
      "Parse FILE and run full validation — topology and flow ranges, \
       workload constraints, the \"domains\" partitioning gates — \
       without running anything. Exit status 0 and a summary line when \
       the spec is runnable; a readable error and exit status 2 \
       otherwise."
    in
    Arg.(
      value & opt (some string) None & info [ "validate" ] ~docv:"FILE" ~doc)
  in
  let action print_default validate =
    match validate with
    | Some path -> (
        let spec = load_spec path in
        match Core.Spec.validate spec with
        | exception Invalid_argument e ->
            Printf.eprintf "%s: %s\n" path e;
            exit 2
        | () ->
            Printf.printf "%s: ok — %s: %d flow(s), %d domain(s), %.1f s\n"
              path spec.Core.Spec.name
              (List.length spec.Core.Spec.flows)
              spec.Core.Spec.domains
              (Sim.Time.to_sec spec.Core.Spec.duration))
    | None ->
        if print_default then print_string (Core.Spec.template ())
        else
          print_string
            (Report.Json.to_string (Core.Spec.to_json Core.Spec.default))
  in
  Cmd.v
    (Cmd.info "spec"
       ~doc:
         "Print the default scenario spec as JSON (with --print-default, a \
          commented template), or check one with --validate, for use with \
          $(b,rss_sim run --spec).")
    Term.(const action $ print_default $ validate)

(* --- meanfield ----------------------------------------------------------- *)

let meanfield_cmd =
  let fast =
    let doc =
      "Shorter runs (8 s) over a narrower flow-count spread — the CI smoke \
       configuration."
    in
    Arg.(value & flag & info [ "fast" ] ~doc)
  in
  let flows =
    let doc =
      "Comma-separated flow counts to simulate (default: powers of two \
       spanning 1/8x..8x the predicted boundary)."
    in
    Arg.(value & opt (some (list int)) None & info [ "flows" ] ~docv:"N,..." ~doc)
  in
  let jobs =
    let doc = "Worker domains for the sweep." in
    Arg.(value & opt positive_int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let action fast flows jobs seed rate_mbps rtt_ms ifq =
    let path =
      {
        Core.Meanfield.paper_path with
        Core.Meanfield.capacity = Sim.Units.mbps rate_mbps /. 8.;
        base_rtt = Sim.Time.ms rtt_ms;
        buffer_packets = ifq;
      }
    in
    let critical = Core.Meanfield.critical_flows path in
    Printf.printf
      "mean-field oracle: predicted stability boundary at N = %d flows\n"
      critical;
    let duration = Sim.Time.sec (if fast then 8 else 30) in
    let flows =
      match flows with
      | Some ns -> Some ns
      | None ->
          if fast then
            Some
              (List.sort_uniq compare
                 [
                   Stdlib.max 1 (critical / 8);
                   Stdlib.max 1 (critical / 4);
                   critical * 2;
                   critical * 4;
                 ])
          else None
    in
    let run () =
      if jobs > 1 then
        Engine.Pool.with_pool ~jobs (fun pool ->
            Core.Meanfield.sweep ~pool ~duration ?flows path ~seed)
      else Core.Meanfield.sweep ~duration ?flows path ~seed
    in
    let s = run () in
    Printf.printf "  %8s  %8s  %11s  %10s  %9s  %11s\n" "flows" "margin"
      "predicted" "queue-mean" "amplitude" "measured";
    let name = function
      | Core.Meanfield.Stable -> "stable"
      | Core.Meanfield.Oscillatory -> "oscillatory"
    in
    List.iter
      (fun (sp : Core.Meanfield.sweep_point) ->
        Printf.printf "  %8d  %8.3f  %11s  %10.1f  %9.3f  %11s%s\n"
          sp.Core.Meanfield.sp_flows sp.sp_margin (name sp.sp_predicted)
          sp.sp_queue_mean sp.sp_amplitude (name sp.sp_measured)
          (if sp.sp_in_band then "  (boundary band, not scored)" else ""))
      s.Core.Meanfield.points;
    Printf.printf
      "agreement outside the 0.25x..2x boundary band: %d/%d\n"
      s.Core.Meanfield.agreed s.Core.Meanfield.out_of_band;
    if s.Core.Meanfield.agreed < s.Core.Meanfield.out_of_band then exit 1
  in
  let term =
    Term.(
      const action $ fast $ flows $ jobs $ seed $ rate_mbps $ rtt_ms $ ifq)
  in
  Cmd.v
    (Cmd.info "meanfield"
       ~doc:
         "Sweep the many-flows engine across flow counts and check the \
          measured stable/oscillatory RED-queue boundary against the \
          mean-field oracle's prediction (exits 1 on disagreement outside \
          the documented tolerance band).")
    term

(* --- calibrate ----------------------------------------------------------- *)

let calibrate_cmd =
  let action rate_mbps rtt_ms ifq =
    match
      Core.Calibrate.ultimate_gain ~rate:(Sim.Units.mbps rate_mbps)
        ~one_way_delay:(Sim.Time.ms (rtt_ms / 2))
        ~ifq_capacity:ifq ()
    with
    | Error e ->
        Printf.eprintf "calibration failed: %s\n" e;
        exit 1
    | Ok result ->
        let critical = result.Control.Ziegler_nichols.critical in
        Format.printf "critical point: %a@." Control.Tuning.pp_critical
          critical;
        let show name gains =
          Format.printf "  %-14s %a@." name Control.Pid.pp_gains gains
        in
        show "paper rule" (Control.Tuning.paper_pid critical);
        show "classic ZN" (Control.Tuning.zn_pid critical);
        show "ZN PI" (Control.Tuning.zn_pi critical);
        show "Tyreus-Luyben" (Control.Tuning.tyreus_luyben critical);
        show "Pessen" (Control.Tuning.pessen critical)
  in
  let term = Term.(const action $ rate_mbps $ rtt_ms $ ifq) in
  Cmd.v
    (Cmd.info "calibrate"
       ~doc:
         "Measure the IFQ plant's critical point with the in-simulation \
          Ziegler-Nichols experiment and print tuned gains.")
    term

let () =
  let doc = "Restricted Slow-Start for TCP — simulator front end" in
  let info = Cmd.info "rss_sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; compare_cmd; chaos_cmd; serve_cmd; trace_cmd;
            calibrate_cmd; meanfield_cmd; list_cmd; spec_cmd ]))
