type model =
  | First_order of { gain : float; tau : float }
  | Fopdt of {
      gain : float;
      tau : float;
      dead_steps : int;
      history : float Queue.t;  (* delayed inputs, oldest first *)
    }
  | Integrator of { gain : float }
  | Second_order of { gain : float; omega : float; zeta : float }

type t = {
  model : model;
  mutable y : float;
  mutable dy : float; (* velocity, used by second-order *)
}

let first_order ~gain ~tau =
  assert (tau > 0.);
  { model = First_order { gain; tau }; y = 0.; dy = 0. }

let first_order_dead_time ~gain ~tau ~dead_time ~dt_hint =
  assert (tau > 0. && dead_time >= 0. && dt_hint > 0.);
  let dead_steps = int_of_float (Float.round (dead_time /. dt_hint)) in
  let history = Queue.create () in
  for _ = 1 to dead_steps do
    Queue.add 0. history
  done;
  { model = Fopdt { gain; tau; dead_steps; history }; y = 0.; dy = 0. }

let integrator ~gain = { model = Integrator { gain }; y = 0.; dy = 0. }

let second_order ~gain ~omega ~zeta =
  assert (omega > 0. && zeta >= 0.);
  { model = Second_order { gain; omega; zeta }; y = 0.; dy = 0. }

(* Sub-step so that forward Euler stays stable even when callers use a
   coarse dt relative to the plant's fastest time constant. *)
let substeps dt fastest =
  let n = int_of_float (Float.ceil (dt /. (fastest /. 10.))) in
  Stdlib.max 1 (Stdlib.min n 1000)

let step t ~dt ~u =
  assert (dt > 0.);
  (match t.model with
  | First_order { gain; tau } ->
      let n = substeps dt tau in
      let h = dt /. float_of_int n in
      for _ = 1 to n do
        t.y <- t.y +. (h *. (((gain *. u) -. t.y) /. tau))
      done
  | Fopdt { gain; tau; dead_steps; history } ->
      let delayed =
        if dead_steps = 0 then u
        else begin
          Queue.add u history;
          Queue.take history
        end
      in
      let n = substeps dt tau in
      let h = dt /. float_of_int n in
      for _ = 1 to n do
        t.y <- t.y +. (h *. (((gain *. delayed) -. t.y) /. tau))
      done
  | Integrator { gain } -> t.y <- t.y +. (dt *. gain *. u)
  | Second_order { gain; omega; zeta } ->
      let n = substeps dt (1. /. omega) in
      let h = dt /. float_of_int n in
      for _ = 1 to n do
        let accel =
          (omega *. omega *. ((gain *. u) -. t.y))
          -. (2. *. zeta *. omega *. t.dy)
        in
        t.dy <- t.dy +. (h *. accel);
        t.y <- t.y +. (h *. t.dy)
      done);
  t.y

let output t = t.y

let reset t =
  t.y <- 0.;
  t.dy <- 0.;
  match t.model with
  | Fopdt { history; dead_steps; _ } ->
      Queue.clear history;
      for _ = 1 to dead_steps do
        Queue.add 0. history
      done
  | First_order _ | Integrator _ | Second_order _ -> ()
