let test_summary_basic () =
  let s = Sim.Stats.Summary.create () in
  List.iter (Sim.Stats.Summary.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (Sim.Stats.Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 5. (Sim.Stats.Summary.mean s);
  Alcotest.(check (float 1e-9)) "min" 2. (Sim.Stats.Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 9. (Sim.Stats.Summary.max s);
  Alcotest.(check (float 1e-9)) "total" 40. (Sim.Stats.Summary.total s);
  (* Population variance of this data is 4; sample variance 32/7. *)
  Alcotest.(check (float 1e-9)) "sample variance" (32. /. 7.)
    (Sim.Stats.Summary.variance s)

let test_summary_empty () =
  let s = Sim.Stats.Summary.create () in
  Alcotest.(check (float 0.)) "mean of empty" 0. (Sim.Stats.Summary.mean s);
  Alcotest.(check (float 0.)) "variance of empty" 0.
    (Sim.Stats.Summary.variance s)

let test_summary_merge () =
  let a = Sim.Stats.Summary.create () and b = Sim.Stats.Summary.create () in
  let whole = Sim.Stats.Summary.create () in
  let data1 = [ 1.; 2.; 3. ] and data2 = [ 10.; 20.; 30.; 40. ] in
  List.iter (Sim.Stats.Summary.add a) data1;
  List.iter (Sim.Stats.Summary.add b) data2;
  List.iter (Sim.Stats.Summary.add whole) (data1 @ data2);
  let merged = Sim.Stats.Summary.merge a b in
  Alcotest.(check int) "count" (Sim.Stats.Summary.count whole)
    (Sim.Stats.Summary.count merged);
  Alcotest.(check (float 1e-9)) "mean" (Sim.Stats.Summary.mean whole)
    (Sim.Stats.Summary.mean merged);
  Alcotest.(check (float 1e-6)) "variance" (Sim.Stats.Summary.variance whole)
    (Sim.Stats.Summary.variance merged)

let qcheck_welford_vs_naive =
  QCheck.Test.make ~name:"Welford matches naive two-pass" ~count:200
    QCheck.(list_of_size (Gen.int_range 2 100) (float_bound_exclusive 1000.))
    (fun xs ->
      let s = Sim.Stats.Summary.create () in
      List.iter (Sim.Stats.Summary.add s) xs;
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0. xs /. n in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs
        /. (n -. 1.)
      in
      Float.abs (Sim.Stats.Summary.mean s -. mean) < 1e-6 *. (1. +. mean)
      && Float.abs (Sim.Stats.Summary.variance s -. var) < 1e-6 *. (1. +. var))

let test_histogram () =
  let h = Sim.Stats.Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  for i = 0 to 99 do
    Sim.Stats.Histogram.add h (float_of_int i /. 10.)
  done;
  Alcotest.(check int) "count" 100 (Sim.Stats.Histogram.count h);
  Alcotest.(check int) "bin 0 has 10" 10 (Sim.Stats.Histogram.bin_count h 0);
  Alcotest.(check int) "no overflow" 0 (Sim.Stats.Histogram.overflow h);
  Sim.Stats.Histogram.add h (-1.);
  Sim.Stats.Histogram.add h 11.;
  Alcotest.(check int) "underflow" 1 (Sim.Stats.Histogram.underflow h);
  Alcotest.(check int) "overflow" 1 (Sim.Stats.Histogram.overflow h);
  let median = Sim.Stats.Histogram.quantile h 0.5 in
  Alcotest.(check bool) "median near 5" true (Float.abs (median -. 5.) < 0.6)

let test_histogram_validation () =
  Alcotest.check_raises "hi <= lo"
    (Invalid_argument "Histogram.create: hi must exceed lo") (fun () ->
      ignore (Sim.Stats.Histogram.create ~lo:1. ~hi:1. ~bins:4));
  let h = Sim.Stats.Histogram.create ~lo:0. ~hi:1. ~bins:4 in
  Alcotest.check_raises "empty quantile"
    (Invalid_argument "Histogram.quantile: empty histogram") (fun () ->
      ignore (Sim.Stats.Histogram.quantile h 0.5))

let test_time_weighted () =
  let g = Sim.Stats.Time_weighted.create ~now:Sim.Time.zero ~init:0. in
  Sim.Stats.Time_weighted.set g ~now:(Sim.Time.sec 1) 10.;
  Sim.Stats.Time_weighted.set g ~now:(Sim.Time.sec 3) 0.;
  (* 1s at 0, 2s at 10, 1s at 0 → mean over 4s = 20/4 = 5. *)
  Alcotest.(check (float 1e-9)) "time-weighted mean" 5.
    (Sim.Stats.Time_weighted.mean g ~now:(Sim.Time.sec 4));
  Alcotest.(check (float 1e-9)) "peak" 10. (Sim.Stats.Time_weighted.max g);
  Alcotest.(check (float 1e-9)) "current value" 0.
    (Sim.Stats.Time_weighted.value g)

let test_time_weighted_zero_elapsed () =
  let g = Sim.Stats.Time_weighted.create ~now:Sim.Time.zero ~init:7. in
  Alcotest.(check (float 1e-9)) "mean with no elapsed time" 7.
    (Sim.Stats.Time_weighted.mean g ~now:Sim.Time.zero)

let test_series () =
  let s = Sim.Stats.Series.create ~name:"x" () in
  Alcotest.(check bool) "empty last" true (Sim.Stats.Series.last_value s = None);
  for i = 1 to 40 do
    Sim.Stats.Series.add s (Sim.Time.ms (i * 10)) (float_of_int i)
  done;
  Alcotest.(check int) "length" 40 (Sim.Stats.Series.length s);
  Alcotest.(check bool) "last" true
    (Sim.Stats.Series.last_value s = Some 40.);
  Alcotest.(check (float 1e-9)) "sample before first" 0.
    (Sim.Stats.Series.sample s ~at:(Sim.Time.ms 5));
  Alcotest.(check (float 1e-9)) "sample exact" 3.
    (Sim.Stats.Series.sample s ~at:(Sim.Time.ms 30));
  Alcotest.(check (float 1e-9)) "sample between" 3.
    (Sim.Stats.Series.sample s ~at:(Sim.Time.ms 39));
  Alcotest.(check (float 1e-9)) "sample after last" 40.
    (Sim.Stats.Series.sample s ~at:(Sim.Time.sec 100));
  Alcotest.(check int) "csv rows" 40 (List.length (Sim.Stats.Series.to_csv_rows s))

let suite =
  [
    Alcotest.test_case "summary basics" `Quick test_summary_basic;
    Alcotest.test_case "summary empty" `Quick test_summary_empty;
    Alcotest.test_case "summary merge" `Quick test_summary_merge;
    QCheck_alcotest.to_alcotest qcheck_welford_vs_naive;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "histogram validation" `Quick test_histogram_validation;
    Alcotest.test_case "time-weighted gauge" `Quick test_time_weighted;
    Alcotest.test_case "time-weighted zero elapsed" `Quick
      test_time_weighted_zero_elapsed;
    Alcotest.test_case "series" `Quick test_series;
  ]
