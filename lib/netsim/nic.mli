(** Transmit side of a network interface: a single-server queue drain.

    The NIC pulls packets from its queue discipline and serializes them
    onto the attached link at the configured line rate. It is purely
    event-driven: {!kick} after every enqueue, and it re-arms itself
    after each transmission completes. *)

type t

val create :
  Sim.Scheduler.t -> rate:Sim.Units.rate -> queue:Queue_disc.t -> t
(** [rate] must be strictly positive; raises [Invalid_argument]
    otherwise. *)

val attach : t -> Link.t -> unit
(** Connect the outgoing link. Must precede the first {!kick}. *)

val kick : t -> unit
(** Start transmitting if idle and the queue is non-empty. *)

val rate : t -> Sim.Units.rate
val busy : t -> bool
val tx_packets : t -> int
val tx_bytes : t -> int

val set_tracer : t -> ?src:int -> Trace.t option -> unit
(** Install (or remove) an event tracer: each completed serialization
    emits [nic.tx] (flow, wire bytes) with [src] (default 0)
    identifying this NIC. With [None] tracing costs one pattern match
    and allocates nothing. *)

val set_dequeue_hook : t -> (Packet.t -> unit) -> unit
(** Invoked each time a packet leaves the queue and starts serializing —
    the host's IFQ uses this to observe occupancy drops. *)
