type t = int

let zero = 0
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let sec n = n * 1_000_000_000

let of_sec s = int_of_float (Float.round (s *. 1e9))
let to_sec t = float_of_int t /. 1e9
let of_ns_int n = n
let to_ns_int t = t
let of_ns_int64 t = Int64.to_int t
let to_ns_int64 t = Int64.of_int t
let to_ms t = float_of_int t /. 1e6

let add a b = a + b
let sub a b = a - b
let scale t k = int_of_float (Float.round (float_of_int t *. k))

let div a b =
  assert (b <> 0);
  float_of_int a /. float_of_int b

let mul_int t n = t * n

let compare = Int.compare
let equal = Int.equal
let ( < ) (a : t) (b : t) = Stdlib.( < ) a b
let ( <= ) (a : t) (b : t) = Stdlib.( <= ) a b
let ( > ) (a : t) (b : t) = Stdlib.( > ) a b
let ( >= ) (a : t) (b : t) = Stdlib.( >= ) a b
let min (a : t) (b : t) = Stdlib.min a b
let max (a : t) (b : t) = Stdlib.max a b

let is_negative t = Stdlib.( < ) t 0
let is_positive t = Stdlib.( > ) t 0
let infinity = max_int

let pp fmt t =
  let f = float_of_int t in
  if t = max_int then Format.fprintf fmt "inf"
  else if Stdlib.( < ) (Float.abs f) 1e3 then Format.fprintf fmt "%dns" t
  else if Stdlib.( < ) (Float.abs f) 1e6 then
    Format.fprintf fmt "%.3gus" (f /. 1e3)
  else if Stdlib.( < ) (Float.abs f) 1e9 then
    Format.fprintf fmt "%.4gms" (f /. 1e6)
  else Format.fprintf fmt "%.6gs" (f /. 1e9)

let to_string t = Format.asprintf "%a" pp t
