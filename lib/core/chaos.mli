(** Chaos sweeps: randomized fault schedules driven through whole
    scenarios, with invariant checking and deterministic failure
    replay.

    Every case is pure data — seed, path parameters, two
    {!Netsim.Fault_model.profile}s — and running it is a pure function
    of that data. The harness samples a canonical trace while the
    simulation runs and checks structural invariants at the end
    (termination, post-outage progress, packet conservation, monotone
    counters, optional completion). A failing case serializes to JSON
    under [results/chaos_failures/] and {!replay} re-runs it from the
    artifact, byte-identical at any [--jobs] setting. *)

type case = {
  name : string;
  seed : int;  (** scenario seed; fault-model streams derive from it *)
  variant : string;  (** slow-start policy, {!Tcp.Slow_start.by_name} *)
  rate : Sim.Units.rate;
  one_way_delay : Sim.Time.t;
  ifq_capacity : int;
  duration : Sim.Time.t;  (** hard simulation horizon *)
  bytes : int option;  (** transfer size; [None] = unbounded stream *)
  max_rto : Sim.Time.t;  (** RTO ceiling handed to {!Tcp.Config} *)
  progress_rtos : int;
      (** progress deadline after the last outage, in units of
          [max_rto] *)
  check_completion : bool;
      (** require all [bytes] acked within [duration] *)
  forward : Netsim.Fault_model.profile;  (** data-path impairments *)
  reverse : Netsim.Fault_model.profile;  (** ACK-path impairments *)
}

val default_case : case
(** The paper's testbed path (100 Mbit/s, 60 ms RTT, IFQ 100), 20 s
    horizon, 400-segment transfer, 2 s RTO ceiling, no faults. *)

type outcome = {
  case : case;
  completed : bool;
  bytes_acked : int;
  timeouts : int;
  retransmits : int;
  violations : string list;  (** empty iff every invariant held *)
  trace : string;
      (** canonical CSV sampled every 250 ms — the byte-identical
          replay witness *)
}

val passed : outcome -> bool

val run_case : case -> outcome
(** Build the scenario, install both fault models, run to
    [case.duration] and check invariants. Deterministic in [case].
    Raises [Invalid_argument] on an unknown [variant] or an invalid
    fault profile. *)

val run_sweep : ?pool:Engine.Pool.t -> case list -> outcome list
(** Run every case, capturing per-case exceptions as an
    ["exception: ..."] violation so one poisoned cell never loses the
    rest of the batch. Results are in input order; with [pool] the
    cases run in parallel with byte-identical outcomes. *)

(** {2 Random schedule generation} *)

val random_case : root:int -> index:int -> case
(** A random fault schedule under [Sim.Rng.derive_seed ~root
    ~stream:index]: Gilbert–Elliott burst loss (~70% of cases),
    reordering (~50%), duplication (~40%), 0–2 outage windows, 0–1
    delay steps, occasionally a lightly-impaired ACK path. Variants
    alternate standard/restricted by index parity. Deterministic in
    [(root, index)]. *)

val random_cases : root:int -> int -> case list
(** [random_cases ~root n] is indices [0 .. n-1]. *)

(** {2 Serialization and replay} *)

val case_to_json : case -> Report.Json.t

val case_of_json : Report.Json.t -> (case, string) result
(** Inverse of {!case_to_json}; errors name the offending field. Times
    travel as exact nanosecond integers. *)

val outcome_to_json : outcome -> Report.Json.t

val write_failures : dir:string -> outcome list -> string list
(** Write one [<name>.json] artifact per failed outcome into [dir]
    (created if missing); returns the paths written. *)

type artifact = {
  artifact_case : case;
  artifact_violations : string list;
  artifact_trace : string;
}

val load_artifact : string -> (artifact, string) result

val replay : string -> (outcome * bool, string) result
(** Re-run the case stored in a failure artifact. The boolean is [true]
    when the fresh run's trace and violations match the artifact
    byte-for-byte — the determinism check [rss_sim chaos --replay]
    reports. *)
