let mss = 1460

let test_reno_additive_increase () =
  let cc = Tcp.Cong_avoid.reno () in
  let cwnd = 10. *. float_of_int mss in
  let next =
    cc.Tcp.Cong_avoid.on_ack ~newly_acked:mss ~cwnd ~mss ~srtt:None ~min_rtt:None
      ~now:Sim.Time.zero
  in
  (* +MSS²/cwnd per ACK: ten ACKs make one MSS per RTT. *)
  Alcotest.(check (float 1e-6)) "increment" (float_of_int mss /. 10.)
    (next -. cwnd)

let test_reno_halves_on_loss () =
  let cc = Tcp.Cong_avoid.reno () in
  let flight = 20 * mss in
  let ssthresh, cwnd =
    cc.Tcp.Cong_avoid.on_loss ~cwnd:(20. *. float_of_int mss) ~flight ~mss
      ~now:Sim.Time.zero
  in
  Alcotest.(check (float 1e-6)) "ssthresh = flight/2"
    (10. *. float_of_int mss) ssthresh;
  Alcotest.(check (float 1e-6)) "cwnd follows" ssthresh cwnd

let test_reno_floor () =
  let cc = Tcp.Cong_avoid.reno () in
  let ssthresh, _ =
    cc.Tcp.Cong_avoid.on_loss ~cwnd:(float_of_int mss) ~flight:mss ~mss
      ~now:Sim.Time.zero
  in
  Alcotest.(check (float 1e-6)) "floor 2 MSS" (2. *. float_of_int mss) ssthresh

let test_reno_rto () =
  let cc = Tcp.Cong_avoid.reno () in
  let ssthresh, cwnd =
    cc.Tcp.Cong_avoid.on_rto ~cwnd:(40. *. float_of_int mss)
      ~flight:(40 * mss) ~mss
  in
  Alcotest.(check (float 1e-6)) "ssthresh" (20. *. float_of_int mss) ssthresh;
  Alcotest.(check (float 1e-6)) "loss window = 1 MSS" (float_of_int mss) cwnd

let test_cubic_beta_decrease () =
  let cc = Tcp.Cong_avoid.cubic () in
  let cwnd = 100. *. float_of_int mss in
  let ssthresh, next =
    cc.Tcp.Cong_avoid.on_loss ~cwnd ~flight:(100 * mss) ~mss
      ~now:(Sim.Time.sec 1)
  in
  Alcotest.(check (float 1e-6)) "beta = 0.7" (0.7 *. cwnd) next;
  Alcotest.(check (float 1e-6)) "ssthresh matches" next ssthresh

let test_cubic_grows_toward_wmax () =
  let cc = Tcp.Cong_avoid.cubic () in
  let m = float_of_int mss in
  (* Establish an epoch with W_max = 100 segments. *)
  let _, after_loss =
    cc.Tcp.Cong_avoid.on_loss ~cwnd:(100. *. m) ~flight:(100 * mss) ~mss
      ~now:Sim.Time.zero
  in
  let cwnd = ref after_loss in
  let srtt = Some (Sim.Time.ms 60) in
  for i = 1 to 2000 do
    let now = Sim.Time.ms (i * 10) in
    cwnd :=
      cc.Tcp.Cong_avoid.on_ack ~newly_acked:mss ~cwnd:!cwnd ~mss ~srtt ~min_rtt:None ~now
  done;
  (* After 20 s the cubic curve has recovered past the old maximum. *)
  Alcotest.(check bool) "recovers toward W_max" true (!cwnd > 95. *. m);
  Alcotest.(check bool) "keeps probing beyond" true (!cwnd > 100. *. m)

let test_cubic_reset () =
  let cc = Tcp.Cong_avoid.cubic () in
  let m = float_of_int mss in
  ignore
    (cc.Tcp.Cong_avoid.on_loss ~cwnd:(100. *. m) ~flight:(100 * mss) ~mss
       ~now:Sim.Time.zero);
  cc.Tcp.Cong_avoid.reset ();
  (* After reset, growth restarts from a fresh epoch without blowing up. *)
  let next =
    cc.Tcp.Cong_avoid.on_ack ~newly_acked:mss ~cwnd:(10. *. m) ~mss
      ~srtt:(Some (Sim.Time.ms 60)) ~min_rtt:None ~now:(Sim.Time.sec 5)
  in
  Alcotest.(check bool) "sane growth" true (next >= 10. *. m && next < 20. *. m)

let test_names () =
  Alcotest.(check string) "reno" "reno" (Tcp.Cong_avoid.reno ()).Tcp.Cong_avoid.name;
  Alcotest.(check string) "cubic" "cubic"
    (Tcp.Cong_avoid.cubic ()).Tcp.Cong_avoid.name

let test_vegas_backlog_regulation () =
  let cc = Tcp.Cong_avoid.vegas () in
  let m = float_of_int mss in
  let base_rtt = Some (Sim.Time.ms 60) in
  (* Backlog 0 (rtt = base): grow. *)
  let grown =
    cc.Tcp.Cong_avoid.on_ack ~newly_acked:mss ~cwnd:(100. *. m) ~mss
      ~srtt:(Some (Sim.Time.ms 60)) ~min_rtt:base_rtt ~now:(Sim.Time.sec 1)
  in
  Alcotest.(check (float 1e-6)) "grows below alpha" (101. *. m) grown;
  (* Large backlog: cwnd 100 seg, rtt 90 vs base 60 → backlog ≈ 33 seg. *)
  let cc2 = Tcp.Cong_avoid.vegas () in
  let shrunk =
    cc2.Tcp.Cong_avoid.on_ack ~newly_acked:mss ~cwnd:(100. *. m) ~mss
      ~srtt:(Some (Sim.Time.ms 90)) ~min_rtt:base_rtt ~now:(Sim.Time.sec 1)
  in
  Alcotest.(check (float 1e-6)) "shrinks above beta" (99. *. m) shrunk;
  (* In the dead band (backlog = 3 with alpha 2, beta 4): hold. *)
  let cc3 = Tcp.Cong_avoid.vegas () in
  let held =
    cc3.Tcp.Cong_avoid.on_ack ~newly_acked:mss ~cwnd:(100. *. m) ~mss
      ~srtt:(Some (Sim.Time.of_sec 0.0618557))
      ~min_rtt:base_rtt ~now:(Sim.Time.sec 1)
  in
  Alcotest.(check (float 1e-6)) "holds in dead band" (100. *. m) held

let test_vegas_once_per_rtt () =
  let cc = Tcp.Cong_avoid.vegas () in
  let m = float_of_int mss in
  let ack now cwnd =
    cc.Tcp.Cong_avoid.on_ack ~newly_acked:mss ~cwnd ~mss
      ~srtt:(Some (Sim.Time.ms 60))
      ~min_rtt:(Some (Sim.Time.ms 60))
      ~now
  in
  let w1 = ack (Sim.Time.ms 100) (100. *. m) in
  (* Second ACK 10 ms later: inside the same RTT, no further change. *)
  let w2 = ack (Sim.Time.ms 110) w1 in
  Alcotest.(check (float 1e-6)) "one adjustment per RTT" w1 w2;
  let w3 = ack (Sim.Time.ms 170) w2 in
  Alcotest.(check (float 1e-6)) "adjusts next RTT" (w2 +. m) w3

let test_vegas_fallback_without_rtt () =
  let cc = Tcp.Cong_avoid.vegas () in
  let m = float_of_int mss in
  let next =
    cc.Tcp.Cong_avoid.on_ack ~newly_acked:mss ~cwnd:(10. *. m) ~mss
      ~srtt:None ~min_rtt:None ~now:Sim.Time.zero
  in
  Alcotest.(check (float 1e-6)) "reno-like without estimates"
    ((10. *. m) +. (m /. 10.))
    next

let qcheck_reno_monotone =
  QCheck.Test.make ~name:"reno on_ack strictly increases cwnd" ~count:200
    QCheck.(int_range 2 10_000)
    (fun segs ->
      let cc = Tcp.Cong_avoid.reno () in
      let cwnd = float_of_int (segs * mss) in
      cc.Tcp.Cong_avoid.on_ack ~newly_acked:mss ~cwnd ~mss ~srtt:None
        ~min_rtt:None ~now:Sim.Time.zero
      > cwnd)

let suite =
  [
    Alcotest.test_case "reno additive increase" `Quick
      test_reno_additive_increase;
    Alcotest.test_case "reno halves on loss" `Quick test_reno_halves_on_loss;
    Alcotest.test_case "reno floor" `Quick test_reno_floor;
    Alcotest.test_case "reno RTO" `Quick test_reno_rto;
    Alcotest.test_case "cubic beta decrease" `Quick test_cubic_beta_decrease;
    Alcotest.test_case "cubic growth toward W_max" `Quick
      test_cubic_grows_toward_wmax;
    Alcotest.test_case "cubic reset" `Quick test_cubic_reset;
    Alcotest.test_case "algorithm names" `Quick test_names;
    Alcotest.test_case "vegas backlog regulation" `Quick
      test_vegas_backlog_regulation;
    Alcotest.test_case "vegas once per RTT" `Quick test_vegas_once_per_rtt;
    Alcotest.test_case "vegas fallback" `Quick test_vegas_fallback_without_rtt;
    QCheck_alcotest.to_alcotest qcheck_reno_monotone;
  ]
